"""Unit tests for the distributed dispatch layer (repro.dist)."""

from __future__ import annotations

import os

import pytest

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.lease import LeaseBoard
from repro.dist.queue import MAX_ATTEMPTS, WorkQueue, fsync_append
from repro.dist.store import RetryPolicy, Store
from repro.dist.worker import QueueWorker, new_worker_id
from repro.exp.records import ExperimentTask, TaskResult
from repro.exp.runner import grid_tasks
from repro.experiments.harness import ExperimentConfig
from repro.sim.metrics import MetricReport


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3)
    base.update(overrides)
    return ExperimentConfig(**base)


def tiny_tasks(n_seeds: int = 2) -> list[ExperimentTask]:
    return grid_tasks(["heuristic"], ["S1"], tiny_config(), n_seeds=n_seeds)


def make_result(key: str, worker_id: str = "w0") -> TaskResult:
    return TaskResult(
        key=key,
        method="heuristic",
        seed=3,
        workloads=("S1",),
        metrics={"S1": MetricReport(
            utilization={"node": 0.5, "burst_buffer": 0.2},
            avg_wait=1.0, avg_slowdown=1.1, max_wait=2.0,
            p95_slowdown=1.5, makespan=100.0, n_jobs=15,
        )},
        wall_time=0.1,
        worker_id=worker_id,
    )


class TestLeaseBoard:
    def test_claim_is_exclusive(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=30.0)
        assert board.try_claim("cell", "alice")
        assert not board.try_claim("cell", "bob")
        lease = board.read("cell")
        assert lease.owner == "alice" and not lease.expired()

    def test_renew_extends_only_for_owner(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=30.0)
        board.try_claim("cell", "alice", now=1000.0)
        before = board.read("cell").expires_at
        assert board.renew("cell", "alice", now=1010.0)
        after = board.read("cell")
        assert after.expires_at > before and after.renewals == 1
        assert not board.renew("cell", "bob")
        assert board.read("cell").owner == "alice"

    def test_release_requires_ownership(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=30.0)
        board.try_claim("cell", "alice")
        assert not board.release("cell", "bob")
        assert board.read("cell") is not None
        assert board.release("cell", "alice")
        assert board.read("cell") is None

    def test_reap_refuses_live_lease(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=30.0)
        board.try_claim("cell", "alice")
        assert not board.reap("cell")
        assert board.read("cell").owner == "alice"

    def test_reap_retires_expired_lease_and_reopens_claim(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=0.001)
        board.try_claim("cell", "alice", now=0.0)  # expires immediately
        assert board.reap("cell", now=1.0)
        assert board.read("cell") is None
        assert board.try_claim("cell", "bob")

    def test_reap_is_single_winner(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=0.001)
        board.try_claim("cell", "alice", now=0.0)
        assert board.reap("cell", now=1.0)
        assert not board.reap("cell", now=1.0)  # already gone

    def test_torn_lease_ages_out(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=0.0001)
        (tmp_path / "cell.json").write_text('{"owner": "al')  # torn claim
        import time

        time.sleep(0.01)  # age past the ttl
        lease = board.read("cell")
        assert lease is not None and lease.expired()
        assert board.reap("cell")

    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseBoard(tmp_path, ttl=0.0)


class TestWorkQueue:
    def test_enqueue_is_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = tiny_tasks()
        keys = queue.enqueue(tasks)
        assert queue.enqueue(tasks) == keys
        assert queue.task_keys() == sorted(keys)

    def test_task_spec_roundtrips_to_same_key(self, tmp_path):
        queue = WorkQueue(tmp_path)
        task = tiny_tasks()[0]
        (key,) = queue.enqueue([task])
        loaded = queue.load_task(key)
        assert loaded.key() == key == task.key()
        assert loaded.config == task.config

    def test_publish_marks_done_and_merges(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.publish("w0", make_result("k1", "w0"))
        assert queue.is_done("k1")
        merged = queue.merged_results()
        assert merged["k1"].worker_id == "w0"

    def test_merge_collapses_duplicate_reissues(self, tmp_path):
        """A straggler's duplicate publish merges away by key."""
        queue = WorkQueue(tmp_path)
        queue.publish("w0", make_result("k1", "w0"))
        queue.publish("w1", make_result("k1", "w1"))
        merged = queue.merged_results()
        assert len(merged) == 1
        assert merged["k1"].worker_id == "w0"  # first shard wins

    def test_merge_skips_torn_tail(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.publish("w0", make_result("k1"))
        with open(queue.shard_path("w0"), "a") as handle:
            handle.write('{"key": "k2", "met')  # crash mid-append
        merged = queue.merged_results()
        assert set(merged) == {"k1"}

    def test_failure_counting_and_poisoning(self, tmp_path):
        queue = WorkQueue(tmp_path)
        for attempt in range(MAX_ATTEMPTS):
            assert not queue.poisoned("k1")
            queue.record_failure("k1", f"w{attempt}", f"boom {attempt}")
        assert queue.poisoned("k1")
        assert queue.failures() == {"k1": MAX_ATTEMPTS}
        assert "boom 0" in queue.failure_errors("k1")[0]

    def test_meta_roundtrip(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.write_meta(trace_dir="/tmp/t", batch_episodes=4)
        assert queue.read_meta() == {"trace_dir": "/tmp/t", "batch_episodes": 4}
        assert WorkQueue(tmp_path / "empty").read_meta() == {}

    def test_create_false_requires_existing_queue(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="work queue"):
            WorkQueue(tmp_path / "nope", create=False)

    def test_status_counts(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=30.0)
        tasks = tiny_tasks()
        keys = queue.enqueue(tasks)
        queue.leases.try_claim(keys[0], "w0")
        status = queue.status()
        assert status.total == 2 and status.done == 0
        assert status.leased_live == 1 and status.unclaimed == 1
        assert status.pending == 2
        queue.publish("w0", make_result(keys[0]))
        queue.leases.release(keys[0], "w0")
        status = queue.status()
        assert status.done == 1 and status.pending == 1
        assert "cells: 1/2 done" in status.summary()

    def test_fsync_append_creates_durable_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        fsync_append(path, "one")
        fsync_append(path, "two")
        assert path.read_text() == "one\ntwo\n"


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(kill_after_claims=2, delay_publish_s=0.5)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            FaultPlan.from_json('{"explode": true}')

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="kill_after_claims"):
            FaultPlan(kill_after_claims=0)
        with pytest.raises(ValueError, match="delay_publish_s"):
            FaultPlan(delay_publish_s=-1.0)

    def test_from_env(self, monkeypatch):
        from repro.dist.faults import FAULTS_ENV

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, FaultPlan(kill_before_publish=1).to_json())
        assert FaultPlan.from_env() == FaultPlan(kill_before_publish=1)

    def test_heartbeat_dropping(self):
        injector = FaultInjector(FaultPlan(drop_heartbeats_after=2))
        assert injector.on_heartbeat() and injector.on_heartbeat()
        assert not injector.on_heartbeat()
        assert not injector.on_heartbeat()

    def test_no_plan_is_inert(self):
        injector = FaultInjector()
        injector.on_claim("k")
        injector.on_publish("k")
        assert injector.on_heartbeat()


class TestQueueWorker:
    def test_drains_queue_and_publishes_provenance(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = tiny_tasks()
        keys = queue.enqueue(tasks)
        report = QueueWorker(queue, worker_id="solo").run()
        assert sorted(report.executed) == sorted(keys)
        merged = queue.merged_results()
        for key in keys:
            assert merged[key].worker_id == "solo"
            assert merged[key].hostname
        assert queue.status().done == 2

    def test_max_cells_bounds_the_loop(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue(tiny_tasks())
        report = QueueWorker(queue, worker_id="one", max_cells=1).run()
        assert report.cells_done == 1
        assert queue.status().done == 1

    def test_respects_live_foreign_lease(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=30.0)
        keys = queue.enqueue(tiny_tasks())
        queue.leases.try_claim(keys[0], "other")
        report = QueueWorker(queue, worker_id="me", max_cells=1).run()
        assert report.executed == [keys[1]]
        assert queue.leases.read(keys[0]).owner == "other"

    def test_reaps_expired_lease_and_reexecutes(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.001)
        keys = queue.enqueue(tiny_tasks(n_seeds=1))
        queue.leases.try_claim(keys[0], "crashed", now=0.0)
        report = QueueWorker(queue, worker_id="rescuer").run()
        assert report.reaped == keys and report.executed == keys

    def test_failing_cell_is_retried_then_poisoned(self, tmp_path):
        queue = WorkQueue(tmp_path)
        keys = queue.enqueue(tiny_tasks(n_seeds=1))

        def explode(task, *args):
            raise RuntimeError("scripted failure")

        report = QueueWorker(queue, worker_id="doomed", execute=explode).run()
        assert report.failed == keys * MAX_ATTEMPTS
        assert queue.poisoned(keys[0])
        assert not queue.is_done(keys[0])
        assert "scripted failure" in queue.failure_errors(keys[0])[0]

    def test_worker_ids_are_unique(self):
        assert new_worker_id() != new_worker_id()
        assert str(os.getpid()) in new_worker_id()


def storm_store(plan: FaultPlan, **kwargs) -> Store:
    """A fault-scripted store whose backoffs never actually sleep."""
    kwargs.setdefault("retry", RetryPolicy(seed="test"))
    return Store(faults=FaultInjector(plan), sleep=lambda _s: None, **kwargs)


class TestLeaseStatFlake:
    def test_stat_flake_on_torn_lease_reads_as_still_claimed(self, tmp_path):
        """A store flake must never answer 'unclaimed' for a claimed key.

        The conservative sentinel delays re-issue by one ttl; the
        alternative (None) invites a second claim on a held cell.
        """
        plan = FaultPlan(io_faults=[{"op": "stat", "errno": "EIO", "count": 0}])
        board = LeaseBoard(
            tmp_path, ttl=30.0,
            store=storm_store(plan, retry=RetryPolicy(max_retries=1, seed="t")),
        )
        (tmp_path / "cell.json").write_text('{"owner": "al')  # torn claim
        lease = board.read("cell")
        assert lease is not None
        assert lease.owner == "?unreadable"
        assert not lease.expired()

    def test_torn_lease_without_flake_still_ages_out(self, tmp_path):
        """The sentinel path does not regress normal torn-claim aging."""
        import time

        board = LeaseBoard(tmp_path, ttl=0.0001)
        (tmp_path / "cell.json").write_text('{"owner": "al')
        time.sleep(0.01)
        lease = board.read("cell")
        assert lease is not None and lease.expired()


class TestClockSkewClamp:
    def test_future_last_seen_reports_zero_age(self, tmp_path):
        import time

        queue = WorkQueue(tmp_path)
        queue.register_worker("skewed")
        path = queue.workers_dir / "skewed.json"
        doc = __import__("json").loads(path.read_text())
        doc["last_seen"] = time.time() + 3600.0  # writer's clock runs ahead
        path.write_text(__import__("json").dumps(doc))
        status = queue.status()
        assert status.workers[0]["age_s"] == 0.0
        assert "seen   0.0s ago" in status.summary()


class TestQuarantine:
    def test_checksum_mismatch_quarantines_not_merges(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.publish("w0", make_result("k1", "w0"))
        queue.publish("w0", make_result("k2", "w0"))
        shard = queue.shard_path("w0")
        # Flip one byte inside the *first* (interior) record.
        lines = shard.read_text().splitlines()
        lines[0] = lines[0].replace('"avg_wait": 1.0', '"avg_wait": 9.9')
        shard.write_text("\n".join(lines) + "\n")
        merged = queue.merged_results()
        assert set(merged) == {"k2"}  # the corrupt record never merges
        records = queue.quarantined()
        assert len(records) == 1
        assert records[0]["reason"] == "journal line checksum mismatch"
        assert records[0]["origin"] == shard.name
        assert records[0]["line_no"] == 1
        assert records[0]["detected_by"]
        assert queue.status().quarantined == 1
        assert "QUARANTINE: 1" in queue.status().summary()

    def test_interior_unsealed_garbage_is_quarantined(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.publish("w0", make_result("k1", "w0"))
        shard = queue.shard_path("w0")
        good = shard.read_text()
        shard.write_text("not json at all\n" + good)
        merged = queue.merged_results()
        assert set(merged) == {"k1"}
        assert queue.quarantine_count() == 1

    def test_torn_tail_is_still_skipped_silently(self, tmp_path):
        """A crashed writer's torn tail is re-issue territory, not
        corruption — it must NOT land in quarantine."""
        queue = WorkQueue(tmp_path)
        queue.publish("w0", make_result("k1", "w0"))
        with open(queue.shard_path("w0"), "a") as handle:
            handle.write('{"key": "k2", "met')
        merged = queue.merged_results()
        assert set(merged) == {"k1"}
        assert queue.quarantine_count() == 0

    def test_quarantine_is_idempotent_across_remerges(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.publish("w0", make_result("k1", "w0"))
        shard = queue.shard_path("w0")
        shard.write_text("garbage-line\n" + shard.read_text())
        queue.merged_results()
        queue.merged_results()
        assert queue.quarantine_count() == 1

    def test_corrupt_task_spec_is_detected_before_execution(self, tmp_path):
        queue = WorkQueue(tmp_path)
        (key,) = queue.enqueue(tiny_tasks(n_seeds=1))
        spec = queue.tasks_dir / f"{key}.json"
        doc = __import__("json").loads(spec.read_text())
        doc["seed"] = doc["seed"] + 1  # bit-flip without breaking JSON
        spec.write_text(__import__("json").dumps(doc))
        with pytest.raises(ValueError, match="CRC32"):
            queue.load_task(key)
        assert queue.quarantine_count() == 1

    def test_legacy_unsealed_records_still_merge(self, tmp_path):
        """Pre-seam shards (no checksum suffix) keep working."""
        import json as _json

        queue = WorkQueue(tmp_path)
        fsync_append(
            queue.shard_path("old"),
            _json.dumps(make_result("k1", "old").to_json_dict(), sort_keys=True),
        )
        merged = queue.merged_results()
        assert set(merged) == {"k1"}
        assert queue.quarantine_count() == 0


class TestCellTimeout:
    def test_hung_cell_is_abandoned_and_poisoned(self, tmp_path):
        import threading

        queue = WorkQueue(tmp_path)
        keys = queue.enqueue(tiny_tasks(n_seeds=1))
        release = threading.Event()

        def hang(task, *args):
            release.wait(30.0)  # a simulation that never returns

        worker = QueueWorker(
            queue, worker_id="watchdogged", cell_timeout_s=0.1,
            poll_interval=0.01, execute=hang,
        )
        report = worker.run()
        release.set()  # unblock the abandoned daemon threads
        assert report.timed_out == keys * MAX_ATTEMPTS
        assert queue.poisoned(keys[0])
        assert not queue.is_done(keys[0])
        assert queue.leases.read(keys[0]) is None  # lease released
        assert "cell_timeout_s" in queue.failure_errors(keys[0])[0]

    def test_timeout_from_queue_meta(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.write_meta(cell_timeout_s=12.5)
        worker = QueueWorker(queue, worker_id="late-joiner")
        worker.run()  # empty queue: resolves meta then drains
        assert worker.cell_timeout_s == 12.5

    def test_fast_cell_under_deadline_completes_normally(self, tmp_path):
        queue = WorkQueue(tmp_path)
        keys = queue.enqueue(tiny_tasks(n_seeds=1))
        report = QueueWorker(
            queue, worker_id="fast", cell_timeout_s=120.0
        ).run()
        assert report.executed == keys and not report.timed_out
        assert queue.is_done(keys[0])


class TestDegradedMode:
    def _worker(self, queue, plan, **kwargs):
        worker = QueueWorker(
            queue, worker_id="degraded", poll_interval=0.01,
            faults=FaultInjector(plan),
            spool_dir=queue.root.parent / "spool",
            **kwargs,
        )
        # Re-seat the store so the scripted faults flow through it but
        # the backoff sleeps stay instant.
        worker.store._sleep = lambda _s: None
        return worker

    def test_publish_failure_spools_then_flushes_on_recovery(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        keys = queue.enqueue(tiny_tasks())
        # ENOSPC on the first two journal appends, then the volume
        # "recovers": publish #1 fails + the first flush try fails, the
        # second flush succeeds.
        plan = FaultPlan(io_faults=[
            {"op": "append", "path": "results/*", "errno": "ENOSPC",
             "count": 2},
        ])
        report = self._worker(queue, plan).run()
        assert len(report.spooled) == 1
        assert sorted(report.executed) == sorted(keys)
        merged = queue.merged_results()
        assert set(merged) == set(keys)  # nothing lost to the outage
        assert not (queue.root.parent / "spool" / "results.jsonl").exists()

    def test_store_that_stays_down_exits_actionably(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(tiny_tasks(n_seeds=1))
        plan = FaultPlan(io_faults=[
            {"op": "append", "path": "results/*", "errno": "ENOSPC",
             "count": 0},
        ])
        worker = self._worker(queue, plan)
        with pytest.raises(RuntimeError, match="spooled"):
            worker.run()
        # The finished result survived on local disk, sealed.
        spooled = (queue.root.parent / "spool" / "results.jsonl").read_text()
        from repro.dist.store import unseal_line

        body, verdict = unseal_line(spooled.strip())
        assert verdict is True
        assert __import__("json").loads(body)["key"]

    def test_heartbeat_survives_store_flakes(self, tmp_path):
        from repro.dist.worker import Heartbeat

        queue = WorkQueue(tmp_path / "q")
        queue.leases.try_claim("cell", "hb-owner")
        plan = FaultPlan(io_faults=[
            {"op": "write", "path": "leases/*", "errno": "EIO", "count": 1},
        ])
        queue.use_store(storm_store(plan, retry=RetryPolicy(max_retries=0, seed="h")))
        heartbeat = Heartbeat(
            queue, "cell", "hb-owner", interval=0.01,
            faults=FaultInjector(),
        )
        heartbeat.start()
        import time

        time.sleep(0.2)
        heartbeat.stop()
        # The first renewal errored (EIO, no retries) but the thread
        # kept beating and later renewals extended the lease.
        assert heartbeat.owned
        assert queue.leases.read("cell").renewals >= 1
