"""Tests for the dynamic-goal switch (§III-B ablation support)."""

import numpy as np

from repro.cluster.resources import ResourcePool
from repro.sim.simulator import Simulator
from tests.conftest import make_job
from tests.unit.test_base_sched import make_ctx
from tests.unit.test_mrsch import small_mrsch


def test_dynamic_goal_tracks_contention(tiny_system):
    sched = small_mrsch(tiny_system)
    pool = ResourcePool(tiny_system)
    bb_heavy = [make_job(job_id=i, nodes=1, bb=6, runtime=1000.0) for i in (1, 2, 3)]
    sched.schedule(make_ctx(tiny_system, pool, list(bb_heavy)))
    _, goals = sched.goal_series()
    assert goals[0, 1] > 0.5  # BB weight dominates


def test_fixed_goal_stays_uniform(tiny_system, tiny_trace):
    sched = small_mrsch(tiny_system, dynamic_goal=False)
    Simulator(tiny_system, sched).run(tiny_trace)
    _, goals = sched.goal_series()
    assert goals.shape[0] > 0
    np.testing.assert_allclose(goals, 0.5)


def test_fixed_goal_still_completes_workload(tiny_system, tiny_trace):
    sched = small_mrsch(tiny_system, dynamic_goal=False)
    result = Simulator(tiny_system, sched).run(tiny_trace)
    assert result.metrics.n_jobs == len(tiny_trace)
