"""Tests for the Job model."""

import pytest

from repro.workload.job import Job
from tests.conftest import make_job


class TestValidation:
    def test_rejects_nonpositive_runtime(self):
        with pytest.raises(ValueError, match="runtime"):
            make_job(runtime=0.0)

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError, match="submit"):
            make_job(submit=-1.0)

    def test_rejects_negative_request(self):
        with pytest.raises(ValueError, match="negative request"):
            make_job(nodes=-1)

    def test_walltime_clamped_to_runtime(self):
        job = make_job(runtime=100.0, walltime=50.0)
        assert job.walltime == 100.0


class TestLifecycle:
    def test_fresh_job_not_started(self):
        job = make_job()
        assert not job.started and not job.finished

    def test_reset_clears_state(self):
        job = make_job()
        job.start_time = 5.0
        job.end_time = 10.0
        job.allocation = {"node": [0]}
        job.reset()
        assert job.start_time is None
        assert job.end_time is None
        assert job.allocation == {}

    def test_copy_shares_statics_but_not_state(self):
        job = make_job(nodes=4, bb=2)
        job.start_time = 9.0
        dup = job.copy()
        assert dup.requests == job.requests
        assert dup.requests is not job.requests
        assert dup.start_time is None


class TestMetrics:
    def test_wait_time(self):
        job = make_job(submit=10.0, runtime=100.0)
        job.start_time = 40.0
        assert job.wait_time == 30.0

    def test_wait_requires_start(self):
        with pytest.raises(RuntimeError):
            _ = make_job().wait_time

    def test_slowdown_one_when_no_wait(self):
        job = make_job(submit=0.0, runtime=100.0)
        job.start_time = 0.0
        assert job.slowdown == 1.0

    def test_slowdown_formula(self):
        job = make_job(submit=0.0, runtime=100.0)
        job.start_time = 300.0
        assert job.response_time == 400.0
        assert job.slowdown == 4.0

    def test_request_defaults_to_zero(self):
        job = make_job(nodes=3)
        assert job.request("nonexistent") == 0
        assert job.request("node") == 3
