"""Tests for the prior-guided MRSch policy and stratified replay.

The feasibility prior (DESIGN.md §2 calibration) ranks fitting jobs by
goal-weighted demand and non-fitting jobs by queue age; DFP predictions
act as a bounded tie-break. Stratified replay keeps the rare
reservation-terminal experiences visible during training.
"""

import numpy as np
import pytest

from repro.cluster.resources import ResourcePool
from repro.core.dfp import DFPAgent, Experience
from repro.sim.simulator import Simulator
from tests.conftest import make_job
from tests.unit.test_base_sched import make_ctx
from tests.unit.test_dfp import small_config
from tests.unit.test_mrsch import small_mrsch


class TestPrior:
    def test_fitting_jobs_outrank_nonfitting(self, tiny_system):
        sched = small_mrsch(tiny_system)
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=99, nodes=12), now=0.0)
        window = [
            make_job(job_id=1, nodes=10),  # does not fit (4 free)
            make_job(job_id=2, nodes=2),   # fits
        ]
        ctx = make_ctx(tiny_system, pool, list(window))
        sched.begin_instance(ctx)
        prior = sched._prior(window, ctx)
        assert prior[1] > prior[0]

    def test_smaller_demand_ranks_higher_among_fitting(self, tiny_system):
        sched = small_mrsch(tiny_system)
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=1, nodes=12), make_job(job_id=2, nodes=2)]
        ctx = make_ctx(tiny_system, pool, list(window))
        sched.begin_instance(ctx)
        prior = sched._prior(window, ctx)
        assert prior[1] > prior[0]

    def test_oldest_nonfitting_ranks_highest(self, tiny_system):
        sched = small_mrsch(tiny_system)
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=99, nodes=16), now=0.0)
        window = [make_job(job_id=i, submit=i * 100.0, nodes=4) for i in (1, 2, 3)]
        ctx = make_ctx(tiny_system, pool, list(window), now=1000.0)
        sched.begin_instance(ctx)
        prior = sched._prior(window, ctx)
        assert prior[0] > prior[1] > prior[2]

    def test_guided_select_prefers_fitting(self, tiny_system):
        sched = small_mrsch(tiny_system)
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=99, nodes=12), now=0.0)
        blocked = make_job(job_id=1, nodes=10)
        fits = make_job(job_id=2, nodes=2)
        window = [blocked, fits]
        ctx = make_ctx(tiny_system, pool, list(window))
        sched.begin_instance(ctx)
        assert sched.select(window, ctx) is fits

    def test_prior_weight_zero_uses_pure_dfp(self, tiny_system, tiny_trace):
        """prior_weight=0 runs the unguided DFP policy end to end."""
        sched = small_mrsch(tiny_system, prior_weight=0.0)
        result = Simulator(tiny_system, sched).run(tiny_trace)
        assert all(j.finished for j in result.jobs)

    def test_guided_training_decays_epsilon(self, tiny_system, tiny_trace):
        sched = small_mrsch(tiny_system)
        eps0 = sched.agent.epsilon
        sched.training = True
        sched.start_episode()
        Simulator(tiny_system, sched).run(tiny_trace)
        sched.finish_episode()
        assert sched.agent.epsilon < eps0

    def test_guided_and_pure_complete_identical_jobs(self, tiny_system, tiny_trace):
        for pw in (0.0, 2.0):
            sched = small_mrsch(tiny_system, prior_weight=pw)
            result = Simulator(tiny_system, sched).run(tiny_trace)
            assert result.metrics.n_jobs == len(tiny_trace)


class TestStratifiedReplay:
    def _fill(self, agent, n_terminal, n_regular, rng):
        for i in range(n_terminal + n_regular):
            agent.replay.append(
                Experience(
                    state=rng.random(12),
                    measurement=rng.random(2),
                    goal=rng.random(2),
                    action=i % 4,
                    target=rng.random(4),
                    terminal=i < n_terminal,
                )
            )

    def test_balanced_when_both_classes_present(self, rng):
        agent = DFPAgent(small_config(batch_size=16), rng=0)
        self._fill(agent, n_terminal=5, n_regular=100, rng=rng)
        batch = agent._sample_batch(16)
        n_term = sum(e.terminal for e in batch)
        assert n_term == 8  # half the batch despite 5% prevalence

    def test_uniform_when_single_class(self, rng):
        agent = DFPAgent(small_config(batch_size=8), rng=0)
        self._fill(agent, n_terminal=0, n_regular=20, rng=rng)
        batch = agent._sample_batch(8)
        assert len(batch) == 8
        assert not any(e.terminal for e in batch)

    def test_terminal_flag_recorded_from_scheduler(self, tiny_system):
        """A selection that cannot fit is recorded as terminal."""
        sched = small_mrsch(tiny_system)
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=99, nodes=16, bb=8), now=0.0)
        window = [make_job(job_id=1, nodes=4)]
        ctx = make_ctx(tiny_system, pool, list(window))
        sched.training = True
        sched.start_episode()
        sched.begin_instance(ctx)
        sched.select(window, ctx)
        assert sched._steps[-1][4] is True


class TestScoreBonus:
    def test_bonus_changes_argmax(self, rng):
        agent = DFPAgent(small_config(), rng=0)
        agent.epsilon = 0.0
        s, m, g = rng.random(12), rng.random(2), rng.random(2)
        mask = np.ones(4, dtype=bool)
        base_action = agent.act(s, m, g, mask)
        bonus = np.zeros(4)
        forced = (base_action + 1) % 4
        bonus[forced] = 1e6
        assert agent.act(s, m, g, mask, score_bonus=bonus) == forced
