"""BatchedSimulator: lockstep N-episode replay vs N sequential runs.

The substrate's contract is decision identity: batching is an execution
strategy, never a policy change. These tests hold N≥8 lockstep MRSch
episodes to the exact start times, instance counts and metric values of
the per-episode path, exercise the sequential fallback for schedulers
without the split decision protocol, and smoke the opt-in batched
training collection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mrsch import MRSchScheduler
from repro.core.training import train_episodes
from repro.sched.fcfs import FCFSScheduler
from repro.sim.batched import BatchedSimulator
from repro.sim.simulator import Simulator
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace

N_EPISODES = 8


@pytest.fixture(scope="module")
def jobsets():
    return [
        generate_theta_trace(
            ThetaTraceConfig(total_nodes=32, n_jobs=40, mean_interarrival=150.0),
            seed=100 + i,
        )
        for i in range(N_EPISODES)
    ]


def _outcome(result) -> tuple:
    """Fully-resolved episode outcome for exact comparison."""
    return (
        [(j.job_id, j.start_time, j.end_time) for j in result.jobs],
        result.metrics.full_dict(),
        result.n_scheduling_instances,
    )


class TestLockstepDecisionIdentity:
    def test_mrsch_lockstep_equals_sequential(self, mini_system, jobsets):
        sequential = MRSchScheduler(mini_system, window_size=5, seed=3)
        sim = Simulator(mini_system, sequential)
        expected = [_outcome(sim.run(jobs)) for jobs in jobsets]

        lockstep = MRSchScheduler(mini_system, window_size=5, seed=3)
        batched = BatchedSimulator.for_scheduler(
            mini_system, lockstep, N_EPISODES
        )
        results = batched.run(jobsets)
        assert [_outcome(r) for r in results] == expected
        # The lockstep run actually batched: fewer calls than rows.
        assert batched.scored_rows > batched.batch_calls > 0

    def test_batch_of_one_is_bit_identical(self, mini_system, jobsets):
        sequential = MRSchScheduler(mini_system, window_size=5, seed=3)
        expected = _outcome(Simulator(mini_system, sequential).run(jobsets[0]))
        solo = BatchedSimulator.for_scheduler(
            mini_system, MRSchScheduler(mini_system, window_size=5, seed=3), 1
        )
        assert _outcome(solo.run([jobsets[0]])[0]) == expected
        # A batch of one always rides the policy's own B=1 scoring path.
        assert solo.batch_calls == 0

    def test_results_follow_episode_order(self, mini_system, jobsets):
        batched = BatchedSimulator.for_scheduler(
            mini_system, MRSchScheduler(mini_system, window_size=5, seed=3), 3
        )
        results = batched.run(jobsets[:3])
        for jobs, result in zip(jobsets[:3], results):
            assert [j.job_id for j in result.jobs] == sorted(
                job.job_id for job in jobs
            )

    def test_rerun_reuses_the_simulator(self, mini_system, jobsets):
        """Episode states and staging buffers are recycled across runs."""
        batched = BatchedSimulator.for_scheduler(
            mini_system, MRSchScheduler(mini_system, window_size=5, seed=3), 4
        )
        first = [_outcome(r) for r in batched.run(jobsets[:4])]
        again = [_outcome(r) for r in batched.run(jobsets[:4])]
        assert again == first


class TestFallbackAndValidation:
    def test_non_split_scheduler_falls_back_sequentially(self, mini_system, jobsets):
        """FCFS never yields: lockstep degrades to per-episode replay
        with identical decisions and zero batched calls."""
        sim = Simulator(mini_system, FCFSScheduler(window_size=5))
        expected = [_outcome(sim.run(jobs)) for jobs in jobsets[:4]]
        batched = BatchedSimulator(
            mini_system, [FCFSScheduler(window_size=5) for _ in range(4)]
        )
        assert [_outcome(r) for r in batched.run(jobsets[:4])] == expected
        assert batched.batch_calls == 0 and batched.scored_rows == 0

    def test_for_scheduler_rejects_unclonable_policies(self, mini_system):
        with pytest.raises(ValueError, match="lockstep"):
            BatchedSimulator.for_scheduler(
                mini_system, FCFSScheduler(window_size=5), 4
            )

    def test_jobset_count_must_match_episodes(self, mini_system, jobsets):
        batched = BatchedSimulator.for_scheduler(
            mini_system, MRSchScheduler(mini_system, window_size=5, seed=3), 4
        )
        with pytest.raises(ValueError, match="jobsets"):
            batched.run(jobsets[:3])

    def test_needs_at_least_one_scheduler(self, mini_system):
        with pytest.raises(ValueError):
            BatchedSimulator(mini_system, [])


class TestBatchedTraining:
    def test_lockstep_collection_trains(self, mini_system, jobsets):
        """Opt-in batched training: losses stay finite, ε decays, and
        the scheduler comes back in inference mode."""
        sched = MRSchScheduler(mini_system, window_size=5, seed=3)
        result = train_episodes(
            sched, [list(js) for js in jobsets[:4]], mini_system, batch_episodes=4
        )
        assert result.episodes == 4
        assert all(np.isfinite(loss) for loss in result.losses)
        assert sched.training is False
        assert sched.agent.epsilon < sched.agent.config.epsilon_start

    def test_batch_episodes_one_matches_sequential_training(
        self, mini_system, jobsets
    ):
        """batch_episodes=1 is literally the sequential trainer."""
        a = MRSchScheduler(mini_system, window_size=5, seed=3)
        b = MRSchScheduler(mini_system, window_size=5, seed=3)
        sets = [list(js) for js in jobsets[:3]]
        ra = train_episodes(a, sets, mini_system, batch_episodes=1)
        rb = train_episodes(b, sets, mini_system)
        assert ra.losses == rb.losses
        assert ra.epsilons == rb.epsilons

    def test_untrainable_scheduler_rejected(self, mini_system, jobsets):
        with pytest.raises(TypeError, match="not trainable"):
            train_episodes(
                FCFSScheduler(window_size=5), [jobsets[0]], mini_system,
                batch_episodes=2,
            )
