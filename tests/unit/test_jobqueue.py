"""Tests for the incremental JobQueue and the scheduler fast paths.

The crucial property: the scheduler machinery must make *identical
decisions* whether the queue is a plain list (the reference path the
other unit tests pin) or a :class:`JobQueue` (the simulator's fast
path) — window contents, selection order, reservation choice and every
backfill admission included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import NODE, ResourcePool, ResourceSpec, SystemConfig
from repro.sched.base import SchedulingContext
from repro.sched.fcfs import FCFSScheduler
from repro.sched.jobqueue import JobQueue
from tests.conftest import make_job


def node_system(units: int = 10) -> SystemConfig:
    return SystemConfig(resources=(ResourceSpec(NODE, units),))


def njob(job_id, nodes, submit=0.0, runtime=100.0, walltime=None):
    job = make_job(job_id=job_id, submit=submit, runtime=runtime,
                   walltime=walltime, nodes=nodes)
    job.requests.pop("burst_buffer")
    return job


class TestJobQueueBasics:
    def test_append_iter_len(self):
        q = JobQueue([NODE])
        jobs = [njob(i, nodes=1) for i in range(5)]
        for job in jobs:
            q.append(job)
        assert len(q) == 5
        assert list(q) == jobs
        assert bool(q)

    def test_contains_and_remove(self):
        q = JobQueue([NODE])
        a, b = njob(1, nodes=2), njob(2, nodes=3)
        q.append(a), q.append(b)
        assert a in q and b in q
        q.remove(a)
        assert a not in q and b in q
        assert list(q) == [b]
        with pytest.raises(ValueError, match="not queued"):
            q.remove(a)

    def test_double_append_rejected(self):
        q = JobQueue([NODE])
        job = njob(1, nodes=1)
        q.append(job)
        with pytest.raises(ValueError, match="already queued"):
            q.append(job)

    def test_indexing_matches_live_order(self):
        q = JobQueue([NODE])
        jobs = [njob(i, nodes=1) for i in range(4)]
        for job in jobs:
            q.append(job)
        q.remove(jobs[1])
        assert q[0] is jobs[0]
        assert q[1] is jobs[2]
        assert q[-1] is jobs[3]

    def test_window_skips_removed_and_started(self):
        q = JobQueue([NODE])
        jobs = [njob(i, nodes=1) for i in range(6)]
        for job in jobs:
            q.append(job)
        q.remove(jobs[0])
        jobs[2].start_time = 1.0  # started but (pathologically) still queued
        assert q.window(3) == [jobs[1], jobs[3], jobs[4]]

    def test_columnar_arrays_track_removals(self):
        q = JobQueue([NODE])
        jobs = [njob(i, nodes=i + 1, walltime=100.0 * (i + 1)) for i in range(4)]
        for job in jobs:
            q.append(job)
        reqs, wall, alive, base = q.candidate_arrays()
        np.testing.assert_array_equal(reqs[:, 0], [1, 2, 3, 4])
        np.testing.assert_array_equal(wall, [100.0, 200.0, 300.0, 400.0])
        assert alive.all()
        q.remove(jobs[2])
        assert not alive[2] and alive[[0, 1, 3]].all()  # live view updated
        assert q.job_at_slot(base + 1) is jobs[1]
        with pytest.raises(IndexError):
            q.job_at_slot(base + 2)

    def test_compaction_preserves_order_and_slots(self):
        q = JobQueue([NODE])
        jobs = [njob(i, nodes=1 + i % 3) for i in range(900)]
        for job in jobs:
            q.append(job)
        for job in jobs[:600]:
            q.remove(job)
        q.append(njob(10_000, nodes=2))  # append triggers compaction
        live = jobs[600:] + [q[len(q) - 1]]
        assert list(q) == live
        reqs, wall, alive, base = q.candidate_arrays()
        assert alive.all()
        for i, job in enumerate(live):
            assert q.job_at_slot(q.slot_of(job)) is job
            assert reqs[q.slot_of(job) - base, 0] == job.request(NODE)

    def test_contention_totals_matches_loop(self):
        system = SystemConfig.mini_theta(nodes=16, bb_units=8)
        q = JobQueue(system.names)
        jobs = [make_job(job_id=i, nodes=1 + i % 5, bb=i % 3,
                         runtime=50.0 * (i + 1)) for i in range(20)]
        for job in jobs:
            q.append(job)
        for job in jobs[::3]:
            q.remove(job)
        caps = np.array([16.0, 8.0])
        expected = np.zeros(2)
        for job in q:
            req = np.array([job.request(n) for n in system.names], dtype=float)
            expected += (req / caps) * job.walltime
        np.testing.assert_allclose(q.contention_totals(caps), expected, rtol=1e-12)

    def test_growth_beyond_initial_capacity(self):
        q = JobQueue([NODE])
        jobs = [njob(i, nodes=1) for i in range(1000)]
        for job in jobs:
            q.append(job)
        assert len(q) == 1000
        assert q.window(3) == jobs[:3]
        assert list(q) == jobs


# -- fast path ≡ reference path ----------------------------------------------


def drive_instances(queue_factory, jobs_data, window_size=4):
    """Run FCFS scheduling instances over a canned arrival script.

    Returns the (instance, started job id) log; the queue object comes
    from ``queue_factory`` so the same script drives a plain list or a
    JobQueue through the *identical* Scheduler machinery.
    """
    system = node_system(10)
    pool = ResourcePool(system)
    sched = FCFSScheduler(window_size=window_size, backfill=True)
    queue = queue_factory(system)
    jobs = [
        njob(i + 1, nodes=nodes, runtime=float(runtime), walltime=float(runtime))
        for i, (nodes, runtime, _) in enumerate(jobs_data)
    ]
    log = []
    now = 0.0
    running: list = []

    def make_start(now_ref):
        def start(job):
            pool.allocate(job, now_ref[0])
            job.start_time = now_ref[0]
            running.append(job)
        return start

    pending = sorted(jobs, key=lambda j: j.submit_time)
    idx = 0
    for instance, (_, _, gap) in enumerate(jobs_data):
        now += gap
        # Release anything whose (exact-estimate) runtime elapsed.
        for job in list(running):
            if job.start_time + job.runtime <= now:
                pool.release(job)
                running.remove(job)
        if idx < len(pending):
            queue.append(pending[idx])
            idx += 1
        now_ref = [now]
        ctx = SchedulingContext(
            now=now, queue=queue, pool=pool, system=system,
            start=make_start(now_ref), running=list(running),
        )
        sched.schedule(ctx)
        log.extend((instance, j.job_id) for j in ctx.started)
    return log


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(1, 10),      # nodes
            st.integers(50, 2000),   # runtime
            st.integers(0, 400),     # gap before this instance
        ),
        min_size=3,
        max_size=30,
    )
)
def test_jobqueue_path_identical_to_list_path(jobs_data):
    """Window + selection + reservation + EASY decisions must match the
    plain-list reference exactly, instance by instance."""
    as_list = drive_instances(lambda system: [], jobs_data)
    as_queue = drive_instances(lambda system: JobQueue(system.names), jobs_data)
    assert as_list == as_queue
