"""Tests for deterministic RNG utilities."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a, b = as_generator(42), as_generator(42)
        assert a.random() == b.random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_fresh_entropy(self):
        assert as_generator(None).random() != as_generator(None).random()


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        kids_a = spawn_generators(7, 3)
        kids_b = spawn_generators(7, 3)
        vals_a = [g.random() for g in kids_a]
        vals_b = [g.random() for g in kids_b]
        assert vals_a == vals_b
        assert len(set(vals_a)) == 3  # streams differ from each other

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(5)
        kids = spawn_generators(parent, 2)
        assert len(kids) == 2
        assert kids[0].random() != kids[1].random()

    def test_zero_children(self):
        assert spawn_generators(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)
