"""Tests for the declarative Scenario spec and its compilation."""

import dataclasses
import json

import pytest

from repro.api.scenario import Scenario, load_scenario
from repro.exp.runner import grid_tasks
from repro.experiments.harness import ExperimentConfig


def tiny_dict(**overrides) -> dict:
    data = {
        "name": "tiny",
        "methods": ["heuristic"],
        "workloads": ["S1"],
        "system": {"name": "mini_theta", "nodes": 32, "bb_units": 16},
        "seed": 97,
        "train": False,
        "config": {"n_jobs": 25, "window_size": 5},
    }
    data.update(overrides)
    return data


class TestValidation:
    def test_minimal(self):
        s = Scenario.from_dict({"methods": ["heuristic"], "workloads": ["S1"]})
        assert s.case_study is False and s.replications == 1

    def test_unknown_top_level_field(self):
        with pytest.raises(ValueError, match="unknown scenario field.*'sheduler'"):
            Scenario.from_dict(tiny_dict(sheduler="x"))

    def test_missing_methods(self):
        with pytest.raises(ValueError, match="missing required field 'methods'"):
            Scenario.from_dict({"workloads": ["S1"]})

    def test_missing_workloads(self):
        with pytest.raises(ValueError, match="missing required field 'workloads'"):
            Scenario.from_dict({"methods": ["heuristic"]})

    def test_unknown_method_names_available(self):
        with pytest.raises(ValueError, match="unknown scheduler 'slurm'.*mrsch"):
            Scenario.from_dict(tiny_dict(methods=["slurm"]))

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload 'S99'"):
            Scenario.from_dict(tiny_dict(workloads=["S99"]))

    def test_unknown_system(self):
        with pytest.raises(ValueError, match="unknown system 'summit'"):
            Scenario.from_dict(tiny_dict(system={"name": "summit"}))

    def test_unknown_system_field(self):
        with pytest.raises(ValueError, match="unknown system field.*'cpus'"):
            Scenario.from_dict(tiny_dict(system={"name": "mini_theta", "cpus": 4}))

    def test_mixed_case_study_flavours_rejected(self):
        with pytest.raises(ValueError, match="mixes case-study"):
            Scenario.from_dict(tiny_dict(workloads=["S1", "S6"]))

    def test_case_study_derived_from_workloads(self):
        assert Scenario.from_dict(tiny_dict(workloads=["S6", "S8"])).case_study is True

    def test_explicit_case_study_must_match_workload_flavour(self):
        """A contradictory flag would otherwise crash deep inside a
        worker with jobs built for the wrong system."""
        with pytest.raises(ValueError, match="case_study=False contradicts"):
            Scenario.from_dict(tiny_dict(workloads=["S9"], case_study=False))
        with pytest.raises(ValueError, match="case_study=True contradicts"):
            Scenario.from_dict(tiny_dict(case_study=True))
        s = Scenario.from_dict(tiny_dict(workloads=["S9"], case_study=True))
        assert s.case_study is True

    def test_duplicate_methods_rejected(self):
        """'MRSch' and 'mrsch' canonicalise to the same cell — running
        it twice and silently merging the pivot helps nobody."""
        with pytest.raises(ValueError, match="methods contains duplicates"):
            Scenario.from_dict(tiny_dict(methods=["MRSch", "mrsch"]))

    def test_duplicate_workloads_rejected(self):
        with pytest.raises(ValueError, match="workloads contains duplicates"):
            Scenario.from_dict(tiny_dict(workloads=["S1", "S1"]))

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="seeds contains duplicates"):
            Scenario.from_dict(tiny_dict(seeds=[7, 7]))

    def test_unknown_option_kwarg_rejected_up_front(self):
        """A typo'd constructor option fails validation with the accepted
        names, not a TypeError deep inside a worker."""
        with pytest.raises(ValueError, match="'backfil'.*accepted.*backfill"):
            Scenario.from_dict(tiny_dict(options={"heuristic": {"backfil": False}}))

    def test_goal_values_must_be_serialisable(self):
        import numpy as np

        with pytest.raises(ValueError, match="JSON-serialisable"):
            Scenario.from_dict(
                tiny_dict(
                    methods=["scalar_rl"],
                    goal={"weights": np.array([0.5, 0.5])},
                )
            )

    def test_string_methods_not_char_split(self):
        """A bare string — an easy JSON mistake — must produce a type
        error, not "unknown scheduler 'h'" from character iteration."""
        with pytest.raises(ValueError, match="must be a list of names"):
            Scenario.from_dict(tiny_dict(methods="heuristic"))
        with pytest.raises(ValueError, match="must be a list of names"):
            Scenario.from_dict(tiny_dict(workloads="S1"))

    def test_workload_requirements_checked_against_system(self):
        """A workload whose builder needs node/burst_buffer resources is
        rejected up front on a system that lacks them."""
        from repro.api.registry import SYSTEMS, register_system
        from repro.cluster.resources import ResourceSpec, SystemConfig

        @register_system("toy_ab")
        def build_ab():
            return SystemConfig(
                resources=(ResourceSpec("A", 10), ResourceSpec("B", 10))
            )

        try:
            with pytest.raises(ValueError, match="requires resource.*'node'"):
                Scenario.from_dict(tiny_dict(system={"name": "toy_ab"}))
        finally:
            SYSTEMS.unregister("toy_ab")

    def test_reserved_option_names_override_config(self):
        """Per-method options may override grid-wide sizing kwargs like
        window_size instead of raising a duplicate-keyword TypeError."""
        from repro.api.facade import run_scenario
        from repro.experiments.harness import make_method

        s = Scenario.from_dict(
            tiny_dict(options={"heuristic": {"window_size": 3}})
        )
        config = s.build_config()
        task = s.compile(config=config)[0]
        sched = make_method(task.method, config.system(), config, **dict(task.extra))
        assert sched.window_size == 3  # option beat the config-wide 5
        result = run_scenario(s)  # and the scenario runs end to end
        assert result.reports["S1"]["heuristic"].n_jobs == 25

    def test_options_accept_alternate_method_spelling(self):
        s = Scenario.from_dict(
            tiny_dict(methods=["MRSch"], options={"MRSch": {"prior_weight": 0.0}})
        )
        assert s.methods == ("mrsch",)
        assert dict(s.compile()[0].extra) == {"prior_weight": 0.0}

    def test_seeds_and_replications_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            Scenario.from_dict(tiny_dict(seeds=[1, 2], replications=3))

    def test_bad_replications(self):
        with pytest.raises(ValueError, match="replications must be a positive int"):
            Scenario.from_dict(tiny_dict(replications=0))

    def test_unknown_goal_key(self):
        with pytest.raises(ValueError, match="unknown goal option.*'weigths'"):
            Scenario.from_dict(tiny_dict(goal={"weigths": {}}))

    def test_plugin_goal_options_accepted(self):
        """Goal keys come from registry metadata, so a plugin scheduler's
        declared goal options validate and translate like builtins'."""
        from repro.api.registry import SCHEDULERS, register_scheduler

        @register_scheduler(
            "toy_goalful",
            goal_options={"latency": "lat_weight"},
            allowed_kwargs=("lat_weight",),
        )
        def make_goalful(system, window_size=10, seed=None, lat_weight=1.0):
            raise NotImplementedError  # construction not needed here

        try:
            s = Scenario.from_dict(
                tiny_dict(methods=["toy_goalful"], goal={"latency": 2.0})
            )
            assert dict(s.compile()[0].extra) == {"lat_weight": 2.0}
        finally:
            SCHEDULERS.unregister("toy_goalful")

    def test_goal_key_consumed_by_no_method(self):
        """'weights' is a scalar_rl option; a heuristic-only scenario
        must name the schedulers that would accept it."""
        with pytest.raises(ValueError, match="consumed by none.*scalar_rl"):
            Scenario.from_dict(tiny_dict(goal={"weights": {"node": 1.0}}))

    def test_options_for_unselected_method(self):
        with pytest.raises(ValueError, match="options given for 'mrsch'"):
            Scenario.from_dict(tiny_dict(options={"mrsch": {"prior_weight": 0}}))

    def test_unknown_config_field(self):
        with pytest.raises(ValueError, match="unknown config field.*'njobs'"):
            Scenario.from_dict(tiny_dict(config={"njobs": 10}))

    def test_bad_sizing_surfaces_experiment_config_error(self):
        with pytest.raises(ValueError, match="n_jobs must be a positive int"):
            Scenario.from_dict(tiny_dict(config={"n_jobs": -5}))

    def test_bad_ga_field(self):
        with pytest.raises(ValueError, match="config.ga"):
            Scenario.from_dict(tiny_dict(config={"ga": {"pop": 3}}))

    def test_method_spelling_is_canonicalised(self):
        """'Optimization' normalises to the registry name, so task keys,
        labels and the harness's ga_config injection all agree."""
        s = Scenario.from_dict(tiny_dict(methods=["Optimization", "MRSch"]))
        assert s.methods == ("optimization", "mrsch")

    def test_fixed_scale_system_defines_its_own_sizing(self):
        """'theta' ignores sizing args, so the experiment inherits the
        built system's capacities instead of demanding magic numbers."""
        config = Scenario.from_dict(tiny_dict(system={"name": "theta"})).build_config()
        assert (config.nodes, config.bb_units) == (4392, 1290)
        assert config.system().capacity("node") == 4392

    def test_fixed_scale_system_rejects_explicit_resize(self):
        with pytest.raises(ValueError, match="fixes node at 4392.*resized to 64"):
            Scenario.from_dict(tiny_dict(system={"name": "theta", "nodes": 64}))

    def test_non_list_workloads_value(self):
        with pytest.raises(ValueError, match="workloads must be a list"):
            Scenario.from_dict(tiny_dict(workloads=5))

    def test_schedulers_alias(self):
        s = Scenario.from_dict(
            {"schedulers": ["heuristic"], "workloads": ["S1"]}
        )
        assert s.methods == ("heuristic",)
        with pytest.raises(ValueError, match="not both"):
            Scenario.from_dict(
                {"methods": ["heuristic"], "schedulers": ["mrsch"], "workloads": ["S1"]}
            )


class TestEvaluationBlock:
    def test_valid_block_accepted_and_enables_capture(self):
        s = Scenario.from_dict(
            tiny_dict(evaluation={"policies": ["fcfs", "shortest_job"],
                                  "trace_dir": "traces", "bootstrap": 200,
                                  "seed": 1})
        )
        tasks = s.compile()
        assert all(t.capture_traces for t in tasks)

    def test_absent_block_leaves_capture_off(self):
        tasks = Scenario.from_dict(tiny_dict()).compile()
        assert all(not t.capture_traces for t in tasks)

    def test_unknown_evaluation_field(self):
        with pytest.raises(ValueError, match="unknown evaluation field.*'polices'"):
            Scenario.from_dict(tiny_dict(evaluation={"polices": ["fcfs"]}))

    def test_unknown_policy_name(self):
        with pytest.raises(ValueError, match="unknown eval policy 'slurm'"):
            Scenario.from_dict(tiny_dict(evaluation={"policies": ["slurm"]}))

    def test_empty_policies_rejected(self):
        with pytest.raises(ValueError, match="non-empty list"):
            Scenario.from_dict(tiny_dict(evaluation={"policies": []}))

    def test_bad_bootstrap_rejected(self):
        with pytest.raises(ValueError, match="bootstrap must be a positive int"):
            Scenario.from_dict(
                tiny_dict(evaluation={"policies": ["fcfs"], "bootstrap": 0})
            )

    def test_bad_trace_dir_rejected(self):
        with pytest.raises(ValueError, match="trace_dir"):
            Scenario.from_dict(
                tiny_dict(evaluation={"policies": ["fcfs"], "trace_dir": ""})
            )

    def test_block_roundtrips_and_hashes(self):
        data = tiny_dict(evaluation={"policies": ["fcfs", "prior"]})
        s = Scenario.from_dict(data)
        assert Scenario.from_dict(s.to_dict()) == s
        assert s.config_hash() != Scenario.from_dict(tiny_dict()).config_hash()

    def test_capture_only_block_without_policies(self):
        s = Scenario.from_dict(tiny_dict(evaluation={"trace_dir": "traces"}))
        assert all(t.capture_traces for t in s.compile())


class TestSerialization:
    def test_round_trip(self):
        s = Scenario.from_dict(tiny_dict(goal=None or {}, replications=2))
        again = Scenario.from_dict(s.to_dict())
        assert again == s

    def test_from_file_and_loader(self, tmp_path):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(tiny_dict()))
        s = Scenario.from_file(path)
        assert s.name == "tiny"
        assert load_scenario(path) == s
        assert load_scenario(s) is s
        assert load_scenario(tiny_dict()) == s

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError, match="scenario file not found"):
            Scenario.from_file("no/such/scenario.json")

    def test_invalid_json_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="broken.json is not valid JSON"):
            Scenario.from_file(path)

    def test_validation_error_names_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(tiny_dict(methods=["slurm"])))
        with pytest.raises(ValueError, match="bad.json: unknown scheduler"):
            Scenario.from_file(path)

    def test_loader_type_error(self):
        with pytest.raises(TypeError, match="cannot load a scenario"):
            load_scenario(42)


class TestHashStability:
    def test_hash_ignores_key_order(self, tmp_path):
        data = tiny_dict()
        reordered = dict(reversed(list(data.items())))
        assert (
            Scenario.from_dict(data).config_hash()
            == Scenario.from_dict(reordered).config_hash()
        )

    def test_hash_changes_with_content(self):
        a = Scenario.from_dict(tiny_dict())
        b = Scenario.from_dict(tiny_dict(seed=98))
        assert a.config_hash() != b.config_hash()

    def test_compiled_task_keys_are_stable(self):
        keys_a = [t.key() for t in Scenario.from_dict(tiny_dict()).compile()]
        keys_b = [t.key() for t in Scenario.from_dict(tiny_dict()).compile()]
        assert keys_a == keys_b


class TestCompilation:
    def test_matches_grid_tasks_exactly(self):
        """Scenario compilation is bit-identical to the harness grid."""
        s = Scenario.from_dict(tiny_dict(methods=["heuristic", "optimization"]))
        config = s.build_config()
        expected = grid_tasks(["heuristic", "optimization"], ["S1"], config)
        assert s.compile(config=config) == expected

    def test_replications_spawn_grid_seeds(self):
        s = Scenario.from_dict(tiny_dict(replications=3))
        config = s.build_config()
        expected = grid_tasks(["heuristic"], ["S1"], config, n_seeds=3)
        assert s.compile(config=config) == expected

    def test_explicit_seeds(self):
        tasks = Scenario.from_dict(tiny_dict(seeds=[5, 6])).compile()
        assert [t.seed for t in tasks] == [5, 6]

    def test_build_config_fields(self):
        config = Scenario.from_dict(
            tiny_dict(config={"n_jobs": 25, "window_size": 5,
                              "curriculum_sets": [1, 1, 1],
                              "ga": {"population": 6, "generations": 2}})
        ).build_config()
        assert isinstance(config, ExperimentConfig)
        assert (config.nodes, config.bb_units) == (32, 16)
        assert (config.n_jobs, config.window_size) == (25, 5)
        assert config.curriculum_sets == (1, 1, 1)
        assert config.ga_config.population == 6
        assert config.system_name == "mini_theta"

    def test_goal_translates_per_method(self):
        s = Scenario.from_dict(
            tiny_dict(
                methods=["mrsch", "scalar_rl", "heuristic"],
                goal={"dynamic": False, "weights": {"node": 0.5, "burst_buffer": 0.5}},
                options={"mrsch": {"prior_weight": 0.0}},
            )
        )
        by_method = {t.method: dict(t.extra) for t in s.compile()}
        assert by_method["mrsch"] == {"dynamic_goal": False, "prior_weight": 0.0}
        assert by_method["scalar_rl"] == {
            "reward_weights": {"node": 0.5, "burst_buffer": 0.5}
        }
        assert by_method["heuristic"] == {}

    def test_replace_revalidates(self):
        s = Scenario.from_dict(tiny_dict())
        assert s.replace(seed=5).seed == 5
        with pytest.raises(ValueError, match="replications"):
            s.replace(replications=-1)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            Scenario.from_dict(tiny_dict()).seed = 1
