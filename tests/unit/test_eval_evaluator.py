"""Offline evaluator metrics on synthetic traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.evaluator import evaluate_traces, policy_choices


class TestPolicyChoices:
    def test_masked_argmax(self, make_decision_trace):
        trace = make_decision_trace(n=2, window=3)
        scores = np.array([[1.0, 5.0, 2.0], [9.0, 0.0, 0.0]])
        np.testing.assert_array_equal(
            policy_choices(trace, scores), [1, 0]
        )

    def test_invalid_slots_never_chosen(self, make_decision_trace):
        trace = make_decision_trace(n=1, window=3)
        trace.masks[0] = [False, True, False]
        scores = np.array([[100.0, 1.0, 50.0]])
        assert policy_choices(trace, scores)[0] == 1

    def test_nan_scores_count_as_unavailable(self, make_decision_trace):
        trace = make_decision_trace(n=1, window=2)
        assert policy_choices(trace, np.array([[np.nan, 0.5]]))[0] == 1


class TestEvaluateTraces:
    def test_logged_policy_has_perfect_agreement(self, make_decision_trace):
        trace = make_decision_trace(n=8, actions=[0, 1, 2, 3, 0, 1, 2, 3])
        report = evaluate_traces([trace], ["logged", "fcfs"], n_bootstrap=50)
        assert report.agreement["logged"] == 1.0
        assert report.agreement["fcfs"] == pytest.approx(2 / 8)
        assert report.n_decisions == 8

    def test_identical_policies_agree_everywhere(self, make_decision_trace):
        trace = make_decision_trace(n=6)
        report = evaluate_traces(
            [trace], {"a": lambda t: -t.feature("walltime"),
                      "b": lambda t: -t.feature("walltime")},
            n_bootstrap=50,
        )
        i, j = report.policies.index("a"), report.policies.index("b")
        assert report.pairwise_agreement[i, j] == 1.0
        assert report.rank_correlation[i, j] == pytest.approx(1.0)
        assert report.regret[i, j] == pytest.approx(0.0)

    def test_regret_diagonal_is_zero_and_off_diagonal_nonnegative(
        self, make_decision_trace
    ):
        trace = make_decision_trace(n=10, seed=3)
        report = evaluate_traces(
            [trace], ["fcfs", "shortest_job", "longest_queued"], n_bootstrap=50
        )
        assert np.allclose(np.diag(report.regret), 0.0)
        assert (report.regret >= -1e-12).all()

    def test_unit_granularity_escalation(self, make_decision_trace):
        single = evaluate_traces(
            [make_decision_trace(n=5)], ["fcfs", "logged"], n_bootstrap=20
        )
        assert single.unit == "decision" and single.n_units == 5

        two_traces = evaluate_traces(
            [make_decision_trace(seed=1), make_decision_trace(seed=1, task_key="t2")],
            ["fcfs", "logged"],
            n_bootstrap=20,
        )
        assert two_traces.unit == "trace" and two_traces.n_units == 2

        two_seeds = evaluate_traces(
            [make_decision_trace(seed=1), make_decision_trace(seed=2)],
            ["fcfs", "logged"],
            n_bootstrap=20,
        )
        assert two_seeds.unit == "seed" and two_seeds.n_units == 2

    def test_per_trace_breakdown(self, make_decision_trace):
        traces = [
            make_decision_trace(seed=1, task_key="a"),
            make_decision_trace(seed=2, task_key="b"),
        ]
        report = evaluate_traces(traces, ["fcfs"], n_bootstrap=20)
        assert set(report.per_trace) == {"a_S1", "b_S1"}
        for entry in report.per_trace.values():
            assert 0.0 <= entry["agreement"]["fcfs"] <= 1.0

    def test_nan_scoring_policy_keeps_regret_contract(self, make_decision_trace):
        """NaN at a valid slot = unavailable: the scorer's diagonal stays
        zero and only affected decisions drop from its regret mean."""
        trace = make_decision_trace(n=4, window=3)

        def patchy(t):
            scores = -t.feature("walltime")
            scores[0, :] = np.nan  # one decision fully unscorable
            scores[1, 0] = np.nan  # one slot unscorable
            return scores

        report = evaluate_traces(
            [trace], {"patchy": patchy, "fcfs": lambda t: np.broadcast_to(
                -np.arange(t.window_size, dtype=float), t.masks.shape).copy()},
            n_bootstrap=20,
        )
        i = report.policies.index("patchy")
        assert report.regret[i, i] == pytest.approx(0.0)
        assert np.isfinite(report.regret[i]).all()
        assert 0.0 <= report.agreement["patchy"] <= 1.0

    def test_untagged_traces_keep_distinct_breakdowns(self, make_decision_trace):
        """Manually recorded traces (no task_key) must not collapse to
        one per_trace entry."""
        traces = [
            make_decision_trace(seed=1, task_key="", workload=""),
            make_decision_trace(seed=2, task_key="", workload=""),
        ]
        report = evaluate_traces(traces, ["fcfs"], n_bootstrap=20)
        assert set(report.per_trace) == {"trace0", "trace1"}

    def test_rejects_empty_inputs(self, make_decision_trace):
        with pytest.raises(ValueError, match="at least one trace"):
            evaluate_traces([], ["fcfs"])
        with pytest.raises(ValueError, match="at least one policy"):
            evaluate_traces([make_decision_trace()], [])

    def test_rejects_misshapen_policy_output(self, make_decision_trace):
        with pytest.raises(ValueError, match="returned shape"):
            evaluate_traces(
                [make_decision_trace()], {"bad": lambda t: np.zeros(3)},
                n_bootstrap=10,
            )

    def test_report_is_deterministic(self, make_decision_trace):
        traces = [make_decision_trace(seed=4)]
        a = evaluate_traces(traces, ["fcfs", "shortest_job"], n_bootstrap=50)
        b = evaluate_traces(traces, ["fcfs", "shortest_job"], n_bootstrap=50)
        assert a.to_json_dict() == b.to_json_dict()
