"""Tests for the shared scheduling machinery: window, reservation, EASY
backfilling (§III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import NODE, ResourcePool, ResourceSpec, SystemConfig
from repro.sched.base import Scheduler, SchedulingContext
from repro.sched.fcfs import FCFSScheduler
from repro.sim.simulator import Simulator
from tests.conftest import make_job


class RecordingFCFS(FCFSScheduler):
    """FCFS that logs which jobs it selected (for window assertions)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.selections = []

    def select(self, window, ctx):
        job = super().select(window, ctx)
        if job is not None:
            self.selections.append(job.job_id)
        return job


def make_ctx(system, pool, queue, now=0.0, running=None):
    started = []

    def start(job):
        pool.allocate(job, now)
        job.start_time = now

    return SchedulingContext(
        now=now, queue=queue, pool=pool, system=system,
        start=start, running=running or [], started=started,
    )


@pytest.fixture
def node_only_system():
    return SystemConfig(resources=(ResourceSpec(NODE, 10),))


def njob(job_id, nodes, submit=0.0, runtime=100.0, walltime=None):
    job = make_job(job_id=job_id, submit=submit, runtime=runtime,
                   walltime=walltime, nodes=nodes)
    job.requests.pop("burst_buffer")
    return job


class TestWindow:
    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            FCFSScheduler(window_size=0)

    def test_selection_restricted_to_window(self, node_only_system):
        pool = ResourcePool(node_only_system)
        queue = [njob(i, nodes=1) for i in range(1, 8)]
        sched = RecordingFCFS(window_size=3, backfill=False)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        # All seven 1-node jobs fit; window refills as jobs start.
        assert sched.selections == list(range(1, 8))

    def test_selecting_outside_window_rejected(self, node_only_system):
        class Rogue(Scheduler):
            name = "rogue"

            def select(self, window, ctx):
                return ctx.queue[-1]  # beyond the window

        pool = ResourcePool(node_only_system)
        queue = [njob(i, nodes=1) for i in range(1, 6)]
        sched = Rogue(window_size=2, backfill=False)
        with pytest.raises(RuntimeError, match="outside the window"):
            sched.schedule(make_ctx(node_only_system, pool, queue))


class TestReservation:
    def test_first_nonfitting_job_reserved(self, node_only_system):
        pool = ResourcePool(node_only_system)
        queue = [njob(1, nodes=8), njob(2, nodes=8), njob(3, nodes=1)]
        sched = FCFSScheduler(window_size=5, backfill=False)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert queue[0].job_id == 2  # job 1 started, removed from queue
        assert sched.reserved_job is queue[0]
        # Job 3 fits but must not start without backfilling.
        assert queue[1].start_time is None

    def test_reservation_starts_when_possible(self, node_only_system):
        pool = ResourcePool(node_only_system)
        blocker = njob(1, nodes=8)
        reserved = njob(2, nodes=8)
        queue = [blocker, reserved]
        sched = FCFSScheduler(window_size=5, backfill=False)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert sched.reserved_job is reserved
        # Blocker ends; next instance starts the reserved job first.
        blocker.end_time = 100.0
        pool.release(blocker)
        sched.schedule(make_ctx(node_only_system, pool, queue, now=100.0))
        assert reserved.start_time == 100.0
        assert sched.reserved_job is None

    def test_stale_reservation_dropped_if_job_gone(self, node_only_system):
        pool = ResourcePool(node_only_system)
        ghost = njob(9, nodes=8)
        sched = FCFSScheduler(window_size=5)
        sched.reserved_job = ghost
        sched.schedule(make_ctx(node_only_system, pool, [njob(1, nodes=2)]))
        assert sched.reserved_job is None

    def test_reset_clears_reservation(self, node_only_system):
        sched = FCFSScheduler()
        sched.reserved_job = njob(1, nodes=1)
        sched.reset()
        assert sched.reserved_job is None


class TestBackfill:
    def test_short_job_backfills(self, node_only_system):
        pool = ResourcePool(node_only_system)
        running = njob(1, nodes=6, walltime=1000.0, runtime=1000.0)
        pool.allocate(running, now=0.0)
        big = njob(2, nodes=10)  # reserved; shadow = 1000
        short = njob(3, nodes=4, walltime=500.0, runtime=500.0)
        queue = [big, short]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert sched.reserved_job is big
        assert short.start_time == 0.0  # ends at 500 < shadow 1000

    def test_long_job_does_not_delay_reservation(self, node_only_system):
        pool = ResourcePool(node_only_system)
        running = njob(1, nodes=6, walltime=1000.0, runtime=1000.0)
        pool.allocate(running, now=0.0)
        big = njob(2, nodes=10)
        long_job = njob(3, nodes=4, walltime=5000.0, runtime=5000.0)
        queue = [big, long_job]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        # long_job would hold 4 nodes past the shadow time and the
        # reservation needs all 10 — must not backfill.
        assert long_job.start_time is None

    def test_long_job_backfills_into_spare(self, node_only_system):
        pool = ResourcePool(node_only_system)
        running = njob(1, nodes=6, walltime=1000.0, runtime=1000.0)
        pool.allocate(running, now=0.0)
        big = njob(2, nodes=6)  # shadow=1000, spare = 10-6 = 4
        long_job = njob(3, nodes=4, walltime=9000.0, runtime=9000.0)
        queue = [big, long_job]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert long_job.start_time == 0.0

    def test_spare_decrements_across_backfills(self, node_only_system):
        pool = ResourcePool(node_only_system)
        running = njob(1, nodes=6, walltime=1000.0, runtime=1000.0)
        pool.allocate(running, now=0.0)
        big = njob(2, nodes=6)  # spare 4
        bf1 = njob(3, nodes=3, walltime=9000.0, runtime=9000.0)
        bf2 = njob(4, nodes=3, walltime=9000.0, runtime=9000.0)
        queue = [big, bf1, bf2]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert bf1.start_time == 0.0
        assert bf2.start_time is None  # spare exhausted (4-3=1 < 3)

    def test_spare_path_admission_decrements_then_blocks(self, node_only_system):
        """Spare-unit accounting end to end: the first long job consumes
        spare units, a second long job that fits free capacity (and the
        *original* spare) but not the reduced spare must not backfill,
        while a third that fits the remainder still may."""
        pool = ResourcePool(node_only_system)
        running = njob(1, nodes=3, walltime=1000.0, runtime=1000.0)
        pool.allocate(running, now=0.0)
        big = njob(2, nodes=8)  # 8 > 7 free: reserved; shadow=1000, spare=2
        bf1 = njob(3, nodes=1, walltime=9000.0, runtime=9000.0)  # spare 2→1
        bf2 = njob(4, nodes=2, walltime=9000.0, runtime=9000.0)  # 2 > 1: no
        bf3 = njob(5, nodes=1, walltime=9000.0, runtime=9000.0)  # 1 <= 1: yes
        queue = [big, bf1, bf2, bf3]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert bf1.start_time == 0.0
        # bf2 fits free capacity (6 nodes idle) — only the decremented
        # spare blocks it; without the decrement it would delay job 2.
        assert bf2.start_time is None
        assert bf3.start_time == 0.0

    def test_shadow_terminating_job_does_not_consume_spare(self, node_only_system):
        """A job admitted because it ends before the shadow time frees
        its units before the reservation starts — it must NOT reduce the
        spare pool for later spare-path candidates."""
        pool = ResourcePool(node_only_system)
        running = njob(1, nodes=4, walltime=1000.0, runtime=1000.0)
        pool.allocate(running, now=0.0)
        big = njob(2, nodes=8)  # 8 > 6 free: reserved; shadow=1000, spare=2
        short = njob(3, nodes=4, walltime=500.0, runtime=500.0)  # ends at 500
        long_job = njob(4, nodes=2, walltime=9000.0, runtime=9000.0)
        queue = [big, short, long_job]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert short.start_time == 0.0  # shadow-terminating path
        # The short job frees its 4 nodes at t=500 < shadow, so it must
        # not charge the spare pool: the long job's 2 nodes still fit the
        # intact spare of 2 and may start. (A buggy decrement would have
        # left spare at -2 and blocked it.)
        assert long_job.start_time == 0.0

    def test_spare_accounting_is_per_resource(self):
        """Multi-resource spare accounting: exhausting the BB spare must
        block a BB-hungry candidate even when node spare remains."""
        system = SystemConfig(
            resources=(ResourceSpec(NODE, 10), ResourceSpec("burst_buffer", 8))
        )
        pool = ResourcePool(system)
        running = make_job(job_id=1, runtime=1000.0, walltime=1000.0, nodes=6, bb=2)
        pool.allocate(running, now=0.0)
        # Reservation: 6 nodes + 6 BB → shadow=1000, spare: node 4, bb 2.
        big = make_job(job_id=2, runtime=1000.0, walltime=1000.0, nodes=6, bb=6)
        bf1 = make_job(job_id=3, runtime=9000.0, walltime=9000.0, nodes=1, bb=2)
        bf2 = make_job(job_id=4, runtime=9000.0, walltime=9000.0, nodes=1, bb=1)
        queue = [big, bf1, bf2]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(system, pool, queue))
        assert bf1.start_time == 0.0  # consumes the whole BB spare
        # bf2 fits capacity (3 free nodes, 4 free BB) and node spare (3),
        # but the BB spare is exhausted — admitting it could delay the
        # reservation's burst buffer.
        assert bf2.start_time is None

    def test_no_backfill_without_reservation(self, node_only_system):
        pool = ResourcePool(node_only_system)
        queue = [njob(1, nodes=2), njob(2, nodes=2)]
        sched = FCFSScheduler(window_size=5, backfill=True)
        sched.schedule(make_ctx(node_only_system, pool, queue))
        assert all(j.start_time == 0.0 for j in [])  # everything started
        assert sched.reserved_job is None


# -- the fundamental EASY safety property -------------------------------------


class ShadowTrackingFCFS(FCFSScheduler):
    """Record the shadow time promised to each job when first reserved."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.promises: dict[int, float] = {}

    def _easy_backfill(self, ctx):
        reserved = self.reserved_job
        if reserved is not None and reserved.job_id not in self.promises:
            self.promises[reserved.job_id] = ctx.pool.earliest_fit_time(
                reserved, ctx.now
            )
        super()._easy_backfill(ctx)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(1, 10),     # nodes
            st.integers(50, 2000),  # runtime = walltime (exact estimates)
            st.integers(0, 300),    # inter-arrival gap
        ),
        min_size=3,
        max_size=25,
    )
)
def test_backfill_never_delays_reservation_property(jobs_data):
    """The EASY guarantee (Mu'alem & Feitelson): with exact runtime
    estimates, a reserved job starts no later than the shadow time
    computed at reservation — backfilled jobs never push it back."""
    system = SystemConfig(resources=(ResourceSpec(NODE, 10),))
    t = 0.0
    jobs = []
    for i, (nodes, runtime, gap) in enumerate(jobs_data):
        t += gap
        job = make_job(job_id=i + 1, submit=t, runtime=float(runtime),
                       walltime=float(runtime), nodes=nodes)
        job.requests.pop("burst_buffer")
        jobs.append(job)

    sched = ShadowTrackingFCFS(window_size=4, backfill=True)
    sim = Simulator(system, sched, record_timeline=False)
    result = sim.run(jobs)
    starts = {j.job_id: j.start_time for j in result.jobs}
    assert all(s is not None for s in starts.values())  # no starvation
    for job_id, shadow in sched.promises.items():
        assert starts[job_id] <= shadow + 1e-6, (
            f"job {job_id} started {starts[job_id]} after promised {shadow}"
        )
