"""Tests for the DFP network and agent."""

import numpy as np
import pytest

from repro.core.dfp import DFPAgent, DFPConfig, DFPNetwork


def small_config(**overrides) -> DFPConfig:
    defaults = dict(
        state_dim=12,
        n_measurements=2,
        n_actions=4,
        offsets=(1, 2),
        temporal_weights=(0.5, 1.0),
        state_hidden=(16, 8),
        state_out=8,
        module_hidden=8,
        module_out=8,
        stream_hidden=8,
        batch_size=8,
        train_batches_per_episode=4,
        slot_dim=3,  # 4 actions × 3 slot features fit the 12-dim state
    )
    defaults.update(overrides)
    return DFPConfig(**defaults)


class TestBatchedScores:
    """Pins the batched replay path the offline evaluator relies on."""

    @pytest.mark.parametrize("stream", ["shared", "dense"])
    def test_action_scores_batch_matches_forward_scores(self, rng, stream):
        """Batched scoring (full forward + per-row contraction) must
        agree with the folded per-state fast path within float
        re-association noise, even when every row carries a different
        goal."""
        agent = DFPAgent(small_config(action_stream=stream), rng=7)
        n = 16
        states = rng.normal(size=(n, 12))
        measurements = rng.uniform(size=(n, 2))
        goals = rng.uniform(0.1, 1.0, size=(n, 2))
        goals /= goals.sum(axis=1, keepdims=True)

        batched = agent.action_scores_batch(states, measurements, goals)
        assert batched.shape == (n, 4)
        for i in range(n):
            per_state = agent.network.forward_scores(
                states[i : i + 1],
                measurements[i : i + 1],
                goals[i : i + 1],
                agent.objective_weights(goals[i]),
            )[0]
            np.testing.assert_allclose(
                batched[i], per_state, rtol=0.0, atol=1e-12
            )

    def test_action_scores_batch_matches_action_scores(self, rng):
        agent = DFPAgent(small_config(), rng=3)
        states = rng.normal(size=(5, 12))
        measurements = rng.uniform(size=(5, 2))
        goal = np.array([0.3, 0.7])
        goals = np.tile(goal, (5, 1))
        batched = agent.action_scores_batch(states, measurements, goals)
        for i in range(5):
            single = agent.action_scores(states[i], measurements[i], goal)
            np.testing.assert_allclose(batched[i], single, rtol=0.0, atol=1e-12)


class TestConfig:
    def test_pred_dim(self):
        cfg = small_config()
        assert cfg.pred_dim == 4  # 2 measurements × 2 offsets

    def test_offsets_weights_length_mismatch(self):
        with pytest.raises(ValueError):
            small_config(offsets=(1, 2, 3))

    def test_offsets_must_increase(self):
        with pytest.raises(ValueError):
            small_config(offsets=(2, 1))

    def test_offsets_positive(self):
        with pytest.raises(ValueError):
            small_config(offsets=(0, 1))

    def test_epsilon_range(self):
        with pytest.raises(ValueError):
            small_config(epsilon_min=0.5, epsilon_start=0.1)
        with pytest.raises(ValueError):
            small_config(epsilon_decay=0.0)

    def test_dimensions_positive(self):
        with pytest.raises(ValueError):
            small_config(state_dim=0)

    def test_paper_scale(self):
        cfg = DFPConfig.paper_scale(state_dim=11404, n_measurements=2, n_actions=10)
        assert cfg.state_hidden == (4000, 1000)
        assert cfg.state_out == 512
        assert cfg.module_hidden == 128


class TestNetwork:
    def test_forward_shape(self, rng):
        cfg = small_config()
        net = DFPNetwork(cfg, rng=rng)
        out = net.forward(
            rng.random((3, 12)), rng.random((3, 2)), rng.random((3, 2))
        )
        assert out.shape == (3, 4, 4)  # (B, actions, pred_dim)

    def test_dueling_decomposition(self, rng):
        """Mean over actions equals the expectation stream output — the
        action stream is normalised to zero mean."""
        cfg = small_config()
        net = DFPNetwork(cfg, rng=rng)
        s, m, g = rng.random((2, 12)), rng.random((2, 2)), rng.random((2, 2))
        preds = net.forward(s, m, g)
        so = net.state_net.forward(s)
        mo = net.meas_net.forward(m)
        go = net.goal_net.forward(g)
        joint = np.concatenate([so, mo, go], axis=1)
        expectation = net.expectation_stream.forward(joint)
        np.testing.assert_allclose(preds.mean(axis=1), expectation, atol=1e-12)

    def test_goal_changes_nothing_without_goal_branch_weights(self, rng):
        """Different goals yield different predictions (goal is an input)."""
        cfg = small_config()
        net = DFPNetwork(cfg, rng=rng)
        s, m = rng.random((1, 12)), rng.random((1, 2))
        a = net.forward(s, m, np.array([[1.0, 0.0]]))
        b = net.forward(s, m, np.array([[0.0, 1.0]]))
        assert not np.allclose(a, b)

    def test_backward_gradcheck(self, rng):
        """End-to-end finite-difference check through branches + streams."""
        cfg = small_config(state_hidden=(6, 5), state_out=4, module_hidden=4,
                           module_out=3, stream_hidden=5)
        net = DFPNetwork(cfg, rng=rng)
        s, m, g = rng.random((2, 12)), rng.random((2, 2)), rng.random((2, 2))
        w = rng.normal(size=(2, cfg.n_actions, cfg.pred_dim))

        def scalar():
            return float((net.forward(s, m, g) * w).sum())

        net.zero_grad()
        net.forward(s, m, g)
        net.backward(w)
        eps = 1e-6
        for layer in net.layers:
            for name, param in layer.params.items():
                flat_idx = np.unravel_index(
                    np.argmax(np.abs(layer.grads[name])), param.shape
                )
                orig = param[flat_idx]
                param[flat_idx] = orig + eps
                up = scalar()
                param[flat_idx] = orig - eps
                dn = scalar()
                param[flat_idx] = orig
                numeric = (up - dn) / (2 * eps)
                assert layer.grads[name][flat_idx] == pytest.approx(
                    numeric, rel=1e-3, abs=1e-6
                )

    def test_custom_state_module_requires_out_dim(self, rng):
        from repro.nn.layers import Dense
        from repro.nn.network import Sequential

        cfg = small_config()
        module = Sequential([Dense(12, 8, rng=rng)])
        with pytest.raises(ValueError):
            DFPNetwork(cfg, rng=rng, state_module=module)
        net = DFPNetwork(cfg, rng=rng, state_module=module, state_module_out=8)
        out = net.forward(rng.random((1, 12)), rng.random((1, 2)), rng.random((1, 2)))
        assert out.shape == (1, 4, 4)

    def test_state_dict_roundtrip(self, rng):
        cfg = small_config()
        a = DFPNetwork(cfg, rng=np.random.default_rng(1))
        b = DFPNetwork(cfg, rng=np.random.default_rng(2))
        s, m, g = rng.random((1, 12)), rng.random((1, 2)), rng.random((1, 2))
        assert not np.allclose(a.forward(s, m, g), b.forward(s, m, g))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.forward(s, m, g), b.forward(s, m, g))


class TestAgentActing:
    def test_objective_weights(self):
        agent = DFPAgent(small_config(), rng=0)
        w = agent.objective_weights(np.array([0.3, 0.7]))
        # offsets weights (0.5, 1.0) ⊗ goal (0.3, 0.7)
        np.testing.assert_allclose(w, [0.15, 0.35, 0.3, 0.7])

    def test_act_respects_mask(self, rng):
        agent = DFPAgent(small_config(), rng=3)
        agent.epsilon = 0.0
        mask = np.array([False, True, False, True])
        for _ in range(10):
            a = agent.act(rng.random(12), rng.random(2), rng.random(2), mask)
            assert a in (1, 3)

    def test_act_explore_respects_mask(self, rng):
        agent = DFPAgent(small_config(epsilon_min=1.0, epsilon_start=1.0), rng=3)
        mask = np.array([True, False, False, False])
        for _ in range(20):
            a = agent.act(rng.random(12), rng.random(2), rng.random(2), mask,
                          explore=True)
            assert a == 0

    def test_no_valid_action_raises(self, rng):
        agent = DFPAgent(small_config(), rng=0)
        with pytest.raises(ValueError):
            agent.act(rng.random(12), rng.random(2), rng.random(2),
                      np.zeros(4, dtype=bool))

    def test_epsilon_decays_only_when_exploring(self, rng):
        agent = DFPAgent(small_config(), rng=0)
        eps0 = agent.epsilon
        agent.act(rng.random(12), rng.random(2), rng.random(2),
                  np.ones(4, dtype=bool), explore=False)
        assert agent.epsilon == eps0
        agent.act(rng.random(12), rng.random(2), rng.random(2),
                  np.ones(4, dtype=bool), explore=True)
        assert agent.epsilon == pytest.approx(eps0 * agent.config.epsilon_decay)

    def test_epsilon_floor(self, rng):
        agent = DFPAgent(small_config(epsilon_min=0.5), rng=0)
        agent.epsilon = 0.5001
        for _ in range(10):
            agent.act(rng.random(12), rng.random(2), rng.random(2),
                      np.ones(4, dtype=bool), explore=True)
        assert agent.epsilon == pytest.approx(0.5)

    def test_greedy_picks_argmax_of_goal_weighted_scores(self, rng):
        agent = DFPAgent(small_config(), rng=0)
        agent.epsilon = 0.0
        s, m, g = rng.random(12), rng.random(2), np.array([0.4, 0.6])
        scores = agent.action_scores(s, m, g)
        a = agent.act(s, m, g, np.ones(4, dtype=bool))
        assert a == int(np.argmax(scores))


class TestAgentLearning:
    def test_build_targets_shapes_and_values(self):
        agent = DFPAgent(small_config(), rng=0)
        ms = [np.array([0.0, 0.0]), np.array([0.1, 0.2]),
              np.array([0.3, 0.1]), np.array([0.5, 0.4])]
        targets = agent.build_targets(ms)
        assert targets.shape == (4, 4)
        # step 0, offset 1: m1 - m0
        np.testing.assert_allclose(targets[0, :2], [0.1, 0.2])
        # step 0, offset 2: m2 - m0
        np.testing.assert_allclose(targets[0, 2:], [0.3, 0.1])
        # step 3 (last): future clamps to final measurement → zeros
        np.testing.assert_allclose(targets[3], 0.0)
        # step 2, offset 2 clamps to last: m3 - m2
        np.testing.assert_allclose(targets[2, 2:], [0.2, 0.3])

    def test_build_targets_empty(self):
        agent = DFPAgent(small_config(), rng=0)
        assert agent.build_targets([]).shape == (0, 4)

    def test_record_episode_fills_replay(self, rng):
        agent = DFPAgent(small_config(), rng=0)
        steps = [(rng.random(12), rng.random(2), rng.random(2), i % 4, i % 3 == 0)
                 for i in range(6)]
        ms = [rng.random(2) for _ in range(6)]
        agent.record_episode(steps, ms)
        assert len(agent.replay) == 6

    def test_record_episode_length_mismatch(self, rng):
        agent = DFPAgent(small_config(), rng=0)
        with pytest.raises(ValueError):
            agent.record_episode([(rng.random(12), rng.random(2), rng.random(2), 0)], [])

    def test_replay_capacity_bounded(self, rng):
        agent = DFPAgent(small_config(replay_capacity=10), rng=0)
        steps = [(rng.random(12), rng.random(2), rng.random(2), 0, False)
                 for _ in range(25)]
        ms = [rng.random(2) for _ in range(25)]
        agent.record_episode(steps, ms)
        assert len(agent.replay) == 10

    def test_train_batch_empty_replay(self):
        agent = DFPAgent(small_config(), rng=0)
        assert agent.train_batch() == 0.0

    def test_training_reduces_loss_on_fixed_task(self, rng):
        """Regression sanity: repeated updates on a fixed replay buffer
        drive the masked MSE down."""
        agent = DFPAgent(small_config(lr=3e-3), rng=0)
        steps = [(rng.random(12), rng.random(2), rng.random(2), i % 4, i % 3 == 0)
                 for i in range(32)]
        ms = [np.array([i / 32, 1 - i / 32]) for i in range(32)]
        agent.record_episode(steps, ms)
        first = np.mean([agent.train_batch() for _ in range(5)])
        for _ in range(150):
            agent.train_batch()
        last = np.mean([agent.train_batch() for _ in range(5)])
        assert last < first

    def test_state_dict_roundtrip_with_epsilon(self, rng):
        a = DFPAgent(small_config(), rng=1)
        a.epsilon = 0.123
        b = DFPAgent(small_config(), rng=2)
        b.load_state_dict(a.state_dict())
        assert b.epsilon == pytest.approx(0.123)
        s, m, g = rng.random(12), rng.random(2), rng.random(2)
        np.testing.assert_allclose(a.action_scores(s, m, g), b.action_scores(s, m, g))
