"""Construction-time validation of ExperimentConfig / SystemConfig."""

import pytest

from repro.cluster.resources import ResourceSpec, SystemConfig
from repro.experiments.harness import ExperimentConfig


class TestExperimentConfigValidation:
    @pytest.mark.parametrize(
        "field", ["nodes", "bb_units", "n_jobs", "window_size", "jobs_per_trainset"]
    )
    @pytest.mark.parametrize("value", [0, -4, 1.5, "8", True])
    def test_positive_int_fields(self, field, value):
        with pytest.raises(ValueError, match=f"{field} must be a positive int"):
            ExperimentConfig(**{field: value})

    def test_seed_must_be_int(self):
        with pytest.raises(ValueError, match="seed must be an int"):
            ExperimentConfig(seed="2022")

    def test_mean_interarrival_positive(self):
        with pytest.raises(ValueError, match="mean_interarrival must be positive"):
            ExperimentConfig(mean_interarrival=0.0)

    @pytest.mark.parametrize("sets", [(1, 1), (1, 1, 1, 1), (1, -1, 1), (1, 1.5, 1), 3])
    def test_curriculum_sets_shape(self, sets):
        with pytest.raises(ValueError, match="curriculum_sets"):
            ExperimentConfig(curriculum_sets=sets)

    def test_system_name_must_be_nonempty(self):
        with pytest.raises(ValueError, match="system_name"):
            ExperimentConfig(system_name="")

    def test_unregistered_system_fails_at_build(self):
        config = ExperimentConfig(system_name="summit")
        with pytest.raises(KeyError, match="unknown system 'summit'"):
            config.system()

    def test_valid_config_builds_registered_system(self):
        system = ExperimentConfig(nodes=48, bb_units=24).system()
        assert system.capacity("node") == 48
        assert system.capacity("burst_buffer") == 24

    def test_fixed_scale_system_must_match_sizing(self):
        """'theta' ignores sizing args; a divergent config fails loudly
        instead of silently generating a trace for the wrong machine."""
        with pytest.raises(ValueError, match="4392 node units.*sized for 128"):
            ExperimentConfig(system_name="theta").system()
        system = ExperimentConfig(
            nodes=4392, bb_units=1290, system_name="theta"
        ).system()
        assert system.capacity("node") == 4392


class TestSystemConfigValidation:
    def test_negative_units_rejected(self):
        with pytest.raises(ValueError, match="positive units"):
            ResourceSpec("node", -1)

    def test_zero_units_rejected(self):
        with pytest.raises(ValueError, match="positive units"):
            ResourceSpec("node", 0)

    def test_empty_resource_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ResourceSpec("", 4)

    def test_duplicate_resource_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate resource names"):
            SystemConfig(resources=(ResourceSpec("node", 2), ResourceSpec("node", 3)))

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError, match="at least one resource"):
            SystemConfig(resources=())
