"""Rank statistics, paired bootstrap and the comparison report."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.eval.stats import (
    ComparisonReport,
    paired_bootstrap,
    rankdata,
    spearman,
    spearman_rows,
    win_loss,
)


class TestRankdata:
    def test_simple_ranks(self):
        np.testing.assert_allclose(rankdata([10.0, 30.0, 20.0]), [1, 3, 2])

    def test_ties_share_average_rank(self):
        np.testing.assert_allclose(rankdata([1.0, 2.0, 2.0, 3.0]), [1, 2.5, 2.5, 4])

    def test_all_equal(self):
        np.testing.assert_allclose(rankdata([5.0, 5.0, 5.0]), [2, 2, 2])


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_perfect(self):
        assert spearman([1, 2, 3, 4], [1, 8, 27, 64]) == pytest.approx(1.0)

    def test_constant_input_is_nan(self):
        assert np.isnan(spearman([1, 1, 1], [1, 2, 3]))

    def test_too_short_is_nan(self):
        assert np.isnan(spearman([1.0], [2.0]))


class TestSpearmanRows:
    def test_matches_scalar_spearman_row_by_row(self):
        """The vectorised path must agree with the reference scalar
        implementation on random scores, ties and partial masks alike."""
        rng = np.random.default_rng(12)
        n, w = 40, 6
        a = np.round(rng.normal(size=(n, w)), 1)  # rounding forces ties
        b = np.round(rng.normal(size=(n, w)), 1)
        masks = rng.uniform(size=(n, w)) < 0.8
        masks[:, 0] = True  # at least one valid slot everywhere
        vec = spearman_rows(a, b, masks)
        for i in range(n):
            valid = masks[i]
            expected = spearman(a[i, valid], b[i, valid])
            if np.isnan(expected):
                assert np.isnan(vec[i])
            else:
                assert vec[i] == pytest.approx(expected, abs=1e-12)

    def test_short_and_constant_rows_are_nan(self):
        a = np.array([[1.0, 2.0], [3.0, 3.0]])
        b = np.array([[1.0, 2.0], [1.0, 2.0]])
        masks = np.array([[True, False], [True, True]])
        out = spearman_rows(a, b, masks)
        assert np.isnan(out).all()  # 1 valid slot; constant left side


class TestPairedBootstrap:
    def test_mean_diff_antisymmetric_and_ci_ordered(self):
        rng = np.random.default_rng(0)
        units = rng.normal(size=(20, 3))
        mean_diff, lo, hi = paired_bootstrap(units, n_bootstrap=200, seed=1)
        np.testing.assert_allclose(mean_diff, -mean_diff.T, atol=1e-12)
        assert (lo <= hi).all()
        assert (np.diag(mean_diff) == 0).all()

    def test_deterministic_in_seed(self):
        units = np.random.default_rng(3).normal(size=(10, 2))
        a = paired_bootstrap(units, n_bootstrap=100, seed=7)
        b = paired_bootstrap(units, n_bootstrap=100, seed=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_clear_separation_excludes_zero(self):
        """A policy better on every unit gets a CI strictly above zero."""
        better = np.linspace(0.8, 0.9, 12)
        worse = np.linspace(0.2, 0.3, 12)
        _, lo, _ = paired_bootstrap(
            np.column_stack([better, worse]), n_bootstrap=500, seed=0
        )
        assert lo[0, 1] > 0.0

    def test_rejects_empty_units(self):
        with pytest.raises(ValueError, match="at least one unit"):
            paired_bootstrap(np.zeros((0, 2)))


class TestWinLoss:
    def test_counts_strict_wins(self):
        units = np.array([[0.9, 0.1], [0.8, 0.2], [0.5, 0.5]])
        wins = win_loss(units)
        assert wins[0, 1] == 2  # ties count for neither side
        assert wins[1, 0] == 0
        assert (np.diag(wins) == 0).all()


class TestComparisonReport:
    def _report(self) -> ComparisonReport:
        two = np.zeros((2, 2))
        return ComparisonReport(
            policies=("a", "b"),
            n_traces=1,
            n_decisions=10,
            agreement={"a": 1.0, "b": 0.5},
            pairwise_agreement=np.eye(2),
            rank_correlation=np.array([[1.0, np.nan], [np.nan, 1.0]]),
            regret=two,
            mean_diff=two,
            ci_lo=two,
            ci_hi=two,
            wins=np.zeros((2, 2), dtype=int),
            unit="decision",
            n_units=10,
            n_bootstrap=100,
        )

    def test_json_is_strict(self):
        payload = self._report().to_json_dict()
        text = json.dumps(payload, allow_nan=False)  # raises if any NaN leaks
        parsed = json.loads(text)
        assert parsed["rank_correlation"]["a"]["b"] is None  # NaN → null
        assert parsed["agreement"]["a"] == 1.0
        assert parsed["bootstrap"]["unit"] == "decision"

    def test_summary_renders_all_sections(self):
        text = self._report().summary()
        for heading in (
            "Agreement with logged actions",
            "Pairwise choice agreement",
            "Spearman rank correlation",
            "Counterfactual score regret",
            "Paired bootstrap",
            "Wins",
        ):
            assert heading in text
