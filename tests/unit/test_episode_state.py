"""EpisodeState / ResourcePool snapshot-restore round trips.

The batched lockstep substrate leans on one invariant: restoring a
snapshot puts *everything* an episode's decisions depend on — pool
arrays, dirty trackers, incremental encoder buffers, the waiting queue,
the event heap, per-job mutable fields — back bit-exactly. These tests
pin that invariant both property-style (random allocate/release/clock
histories) and end-to-end (a forked mid-run episode replays to the same
result twice).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import (
    BURST_BUFFER,
    NODE,
    ResourcePool,
    ResourceSpec,
    SystemConfig,
)
from repro.sched.fcfs import FCFSScheduler
from repro.sim.episode import EpisodeState
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace
from tests.conftest import make_job

SYSTEM = SystemConfig(
    resources=(ResourceSpec(NODE, 16, "node"), ResourceSpec(BURST_BUFFER, 8, "TB"))
)


def _pool_fingerprint(pool: ResourcePool, now: float) -> tuple:
    """Every observable the schedulers and encoders read off a pool."""
    parts = [tuple(pool.free_vector().tolist()), tuple(sorted(pool.running_jobs()))]
    for name in pool.config.names:
        busy, est = pool.unit_arrays(name)
        parts.append((name, busy.tobytes(), est.tobytes()))
        state_busy, state_est = pool.unit_state(name, now)
        parts.append((state_busy.tobytes(), state_est.tobytes()))
    return tuple(parts)


# Each history step: (kind, size, clock delta). ``kind`` allocates a
# fresh job, releases the oldest live one, or just advances the clock.
_steps = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "release", "tick"]),
        st.integers(1, 12),
        st.floats(0.0, 500.0),
    ),
    min_size=1,
    max_size=30,
)


class TestPoolSnapshotRestore:
    @settings(max_examples=40, deadline=None)
    @given(pre=_steps, post=_steps)
    def test_random_history_round_trip(self, pre, post):
        """snapshot → divergent future → restore ≡ the snapshot point."""
        pool = ResourcePool(SYSTEM)
        tracker = pool.register_tracker()
        tracker.drain()  # start the tracker clean, as an encoder would

        live: list = []
        clock = [0.0]
        ids = iter(range(1, 1000))

        def apply(steps):
            for kind, size, dt in steps:
                clock[0] += dt
                if kind == "alloc":
                    job = make_job(
                        job_id=next(ids), nodes=size, bb=size % 8, runtime=100.0
                    )
                    if pool.can_fit(job):
                        pool.allocate(job, clock[0])
                        live.append(job)
                elif kind == "release" and live:
                    pool.release(live.pop(0))

        apply(pre)
        frozen = _pool_fingerprint(pool, clock[0])
        snap = pool.snapshot()
        saved_clock, saved_live = clock[0], list(live)

        apply(post)  # drive the pool somewhere else entirely
        pool.restore(snap)
        clock[0], live = saved_clock, saved_live

        assert _pool_fingerprint(pool, clock[0]) == frozen
        # The restore marks every tracker dirty: the next drain must
        # demand a full rebuild, never a stale incremental patch.
        assert tracker.drain() is None
        # The restored pool keeps working: release everything live.
        for job in live:
            pool.release(job)
        assert pool.running_jobs() == []

    def test_restore_preserves_array_identity(self):
        """In-place restore — encoder attachments bind by identity."""
        pool = ResourcePool(SYSTEM)
        before = {name: pool.unit_arrays(name) for name in SYSTEM.names}
        snap = pool.snapshot()
        pool.allocate(make_job(job_id=1, nodes=4, bb=2), 10.0)
        pool.restore(snap)
        for name in SYSTEM.names:
            busy, est = pool.unit_arrays(name)
            assert busy is before[name][0]
            assert est is before[name][1]


def _episode_fingerprint(state: EpisodeState) -> tuple:
    return (
        state.now,
        state.n_instances,
        tuple(job.job_id for job in state.queue),
        tuple(state.running),
        tuple((j.job_id, j.start_time, j.end_time) for j in state.jobs),
        state.events.snapshot()[1],
        _pool_fingerprint(state.pool, state.now),
    )


def _finish(scheduler, state: EpisodeState) -> tuple:
    """Drive a loaded episode to its end; fully-resolved outcome."""
    while state.advance():
        scheduler.schedule(state.context())
        state.end_instance()
    result = state.finish()
    return (
        [(j.job_id, j.start_time, j.end_time) for j in result.jobs],
        result.metrics.full_dict(),
        result.n_scheduling_instances,
        result.recorder.utilization_series[1].tobytes(),
    )


class TestEpisodeSnapshotRestore:
    @pytest.fixture()
    def trace(self):
        cfg = ThetaTraceConfig(total_nodes=32, n_jobs=60, mean_interarrival=120.0)
        return generate_theta_trace(cfg, seed=13)

    @pytest.mark.parametrize("fork_at", [1, 7, 23])
    def test_forked_replay_is_bit_identical(self, mini_system, trace, fork_at):
        """Run to an instance, snapshot, finish, restore, finish again —
        both futures must be the same future."""
        sched = FCFSScheduler(window_size=5)
        state = EpisodeState(mini_system)
        state.load(trace)
        sched.reset()
        for _ in range(fork_at):
            assert state.advance()
            sched.schedule(state.context())
            state.end_instance()
        snap = state.snapshot()
        at_fork = _episode_fingerprint(state)

        first = _finish(sched, state)
        state.restore(snap)
        assert _episode_fingerprint(state) == at_fork
        # Replay the restored tail under a fresh scheduler: FCFS's only
        # cross-instance state (the backfill reservation) is re-derived
        # from the restored queue/pool on the next instance.
        sched2 = FCFSScheduler(window_size=5)
        sched2.reset()
        assert _finish(sched2, state) == first

    def test_restore_rebuilds_queue_in_submission_order(self, mini_system):
        jobs = [
            make_job(job_id=i, submit=0.0, nodes=20, runtime=50.0) for i in (3, 1, 2)
        ]
        state = EpisodeState(mini_system)
        state.load(jobs)
        assert state.advance()  # all submit at t=0; only job 1 fits
        sched = FCFSScheduler(window_size=5)
        sched.reset()
        sched.schedule(state.context())
        state.end_instance()
        snap = state.snapshot()
        order = [job.job_id for job in state.queue]
        state.restore(snap)
        assert [job.job_id for job in state.queue] == order == [2, 3]

    def test_recorder_survives_restore(self, mini_system, trace):
        state = EpisodeState(mini_system)
        state.load(trace)
        sched = FCFSScheduler(window_size=5)
        sched.reset()
        for _ in range(5):
            state.advance()
            sched.schedule(state.context())
            state.end_instance()
        snap = state.snapshot()
        times, values = state.recorder.utilization_series
        state.advance()
        sched.schedule(state.context())
        state.end_instance()
        state.restore(snap)
        t2, v2 = state.recorder.utilization_series
        np.testing.assert_array_equal(t2, times)
        np.testing.assert_array_equal(v2, values)
