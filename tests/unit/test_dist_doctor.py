"""Unit tests for ``repro doctor`` (repro.dist.doctor): every anomaly
class seeded into a fabricated queue dir, dry-run vs --repair."""

from __future__ import annotations

import json
import socket
import subprocess
import time

import pytest

from repro.api.cli import main
from repro.dist.doctor import audit_queue
from repro.dist.manifest import (
    COORDINATOR_KEY,
    RunManifest,
    batch_name,
    ensure_enqueued,
)
from repro.dist.queue import WorkQueue
from repro.exp.records import ExperimentTask
from repro.exp.runner import grid_tasks
from repro.experiments.harness import ExperimentConfig


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3)
    base.update(overrides)
    return ExperimentConfig(**base)


def tiny_tasks(n_seeds: int = 2) -> list[ExperimentTask]:
    return grid_tasks(["heuristic"], ["S1"], tiny_config(), n_seeds=n_seeds)


def dead_pid() -> int:
    """A pid that existed a moment ago and is now gone."""
    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


def checks(report) -> set[str]:
    return {f.check for f in report.findings}


def finding(report, check):
    matches = [f for f in report.findings if f.check == check]
    assert matches, f"no {check!r} finding in {checks(report)}"
    return matches[0]


def test_not_a_queue_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        audit_queue(tmp_path / "nothing-here")


def test_clean_queue_is_ok(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    ensure_enqueued(queue, tiny_tasks())
    report = audit_queue(tmp_path / "q")
    assert report.ok
    assert not any(
        f.severity in ("warn", "error") for f in report.findings
    )
    # Serializes and summarizes without blowing up.
    json.dumps(report.to_json_dict())
    assert "clean" in report.summary() or "OK" in report.summary()


def test_manifest_anomalies(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    tasks = tiny_tasks()
    ensure_enqueued(queue, tasks)
    queue.manifest_path.write_text("{corrupt")
    dry = audit_queue(tmp_path / "q")
    assert not dry.ok
    assert not finding(dry, "manifest-corrupt").repaired
    assert queue.manifest_path.exists()  # dry run touched nothing
    fixed = audit_queue(tmp_path / "q", repair=True)
    assert finding(fixed, "manifest-corrupt").repaired
    assert not queue.manifest_path.exists()
    assert queue.quarantine_count() == 1
    # Quarantine contents themselves are a report-only warning now.
    after = audit_queue(tmp_path / "q")
    assert "quarantine" in checks(after)
    assert "manifest-missing" in checks(after)


def test_staged_manifest_is_flagged_not_repaired(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    tasks = tiny_tasks()
    queue.write_manifest(
        RunManifest(
            run_id="r1", generation=1,
            keys=tuple(t.key() for t in tasks), context={},
            state="staged", batches=(batch_name(1),),
        )
    )
    report = audit_queue(tmp_path / "q", repair=True)
    flag = finding(report, "manifest-staged")
    assert flag.severity == "warn" and not flag.repair
    assert not report.ok  # needs a dispatch re-run, not a doctor


def test_unpromoted_batch_and_staging_orphan(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    tasks = tiny_tasks()
    # Sealed manifest whose batch never left staging/ ...
    queue.stage_batch(tasks, batch_name(1))
    queue.write_manifest(
        RunManifest(
            run_id="r1", generation=1,
            keys=tuple(t.key() for t in tasks), context={},
            state="sealed", batches=(batch_name(1),),
        )
    )
    # ... plus a staging file nothing references.
    (queue.staging_dir / "batch-g9999.jsonl").write_text("junk\n")
    dry = audit_queue(tmp_path / "q")
    assert {"batch-unpromoted", "staging-orphan"} <= checks(dry)
    assert not dry.ok
    fixed = audit_queue(tmp_path / "q", repair=True)
    assert finding(fixed, "batch-unpromoted").repaired
    assert finding(fixed, "staging-orphan").repaired
    assert queue.task_keys() == sorted(t.key() for t in tasks)
    assert not (queue.staging_dir / "batch-g9999.jsonl").exists()
    assert audit_queue(tmp_path / "q").ok


def test_dead_coordinator_lease(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    host = socket.gethostname().split(".")[0]
    owner = f"coord-{host}-{dead_pid()}"
    assert queue.leases.try_claim(COORDINATOR_KEY, owner)
    dry = audit_queue(tmp_path / "q")
    assert "coordinator-dead" in checks(dry)
    assert not dry.ok
    fixed = audit_queue(tmp_path / "q", repair=True)
    assert finding(fixed, "coordinator-dead").repaired
    assert queue.leases.read(COORDINATOR_KEY) is None
    assert audit_queue(tmp_path / "q").ok


def test_live_coordinator_is_informational(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    host = socket.gethostname().split(".")[0]
    import os

    assert queue.leases.try_claim(COORDINATOR_KEY, f"coord-{host}-{os.getpid()}")
    report = audit_queue(tmp_path / "q")
    assert finding(report, "coordinator-live").severity == "info"
    assert report.ok


def test_orphan_and_expired_task_leases(tmp_path):
    queue = WorkQueue(tmp_path / "q", lease_ttl=0.05)
    tasks = tiny_tasks()
    queue.enqueue(tasks)
    done_key, pending_key = tasks[0].key(), tasks[1].key()
    # Orphan: lease on a cell that is already done.
    assert queue.leases.try_claim(done_key, "w-dead")
    queue.mark_done(done_key, "w-dead")
    # Expired: lease on a pending cell whose owner went silent.
    assert queue.leases.try_claim(pending_key, "w-silent")
    time.sleep(0.1)
    dry = audit_queue(tmp_path / "q")
    assert {"lease-orphan", "lease-expired"} <= checks(dry)
    fixed = audit_queue(tmp_path / "q", repair=True)
    assert finding(fixed, "lease-orphan").repaired
    assert finding(fixed, "lease-expired").repaired
    assert queue.leases.read(done_key) is None
    assert queue.leases.read(pending_key) is None


def test_tombstones_and_tmp_debris_are_info(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    (queue.leases._tombstones / "k1.json").write_text("{}")
    (queue.root / ".shard.json.tmp").write_text("partial")
    dry = audit_queue(tmp_path / "q")
    assert {"reap-tombstone", "tmp-debris"} <= checks(dry)
    assert dry.ok  # info-only debris never fails the audit
    fixed = audit_queue(tmp_path / "q", repair=True)
    assert finding(fixed, "reap-tombstone").repaired
    assert finding(fixed, "tmp-debris").repaired
    assert not (queue.leases._tombstones / "k1.json").exists()
    assert not (queue.root / ".shard.json.tmp").exists()


def test_complete_but_pending_is_an_error(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    tasks = tiny_tasks()
    ensure_enqueued(queue, tasks)
    manifest = queue.read_manifest()
    from dataclasses import replace

    queue.write_manifest(replace(manifest, state="complete"))
    report = audit_queue(tmp_path / "q", repair=True)
    flag = finding(report, "complete-but-pending")
    assert flag.severity == "error" and not flag.repaired
    assert not report.ok


def test_spec_missing_and_poisoned_cells(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    tasks = tiny_tasks()
    ensure_enqueued(queue, tasks)
    poisoned_key = tasks[0].key()
    for attempt in range(3):
        queue.record_failure(poisoned_key, f"w{attempt}", "boom")
    assert queue.poisoned(poisoned_key)
    # A manifest key with neither a spec nor a done marker.
    manifest = queue.read_manifest()
    from dataclasses import replace

    queue.write_manifest(
        replace(manifest, keys=manifest.keys + ("feedfacecafe",))
    )
    report = audit_queue(tmp_path / "q")
    assert {"cell-poisoned", "spec-missing", "cells-pending"} <= checks(
        report
    )
    assert not report.ok


def test_stale_worker_registration(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    queue.register_worker("w-gone", last_seen=time.time() - 3600)
    queue.register_worker("w-live")
    dry = audit_queue(tmp_path / "q", stale_worker_s=60.0)
    stale = [f for f in dry.findings if f.check == "worker-stale"]
    assert len(stale) == 1 and "w-gone" in stale[0].detail
    fixed = audit_queue(tmp_path / "q", repair=True, stale_worker_s=60.0)
    assert finding(fixed, "worker-stale").repaired
    records = {w["worker_id"]: w for w in queue.workers()}
    assert records["w-gone"]["exited"] and records["w-gone"]["stale"]
    assert not records["w-live"].get("exited")
    # Exited workers are skipped on the next pass.
    assert "worker-stale" not in checks(
        audit_queue(tmp_path / "q", stale_worker_s=60.0)
    )


def test_spool_backlog_is_reported(tmp_path):
    queue = WorkQueue(tmp_path / "q")
    queue.write_worker_metrics("w0", {
        "counters": {"store.degraded_entries": 4,
                     "store.spool_flushed": 1},
    })
    report = audit_queue(tmp_path / "q")
    flag = finding(report, "spool-backlog")
    assert "3 result(s)" in flag.detail and not flag.repair


class TestDoctorCLI:
    def test_exit_codes_and_repair(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "q")
        ensure_enqueued(queue, tiny_tasks())
        assert main(["doctor", str(tmp_path / "q")]) == 0
        orphan = queue.staging_dir / "batch-g9999.jsonl"
        queue.staging_dir.mkdir(exist_ok=True)
        orphan.write_text("junk\n")
        assert main(["doctor", str(tmp_path / "q")]) == 1
        out = capsys.readouterr().out
        assert "staging-orphan" in out and "dry run" in out
        assert main(["doctor", str(tmp_path / "q"), "--repair"]) == 0
        assert not orphan.exists()

    def test_repairing_corruption_still_flags_quarantine(self, tmp_path):
        """Quarantining a corrupt manifest repairs the corruption but
        leaves a report-only quarantine warning — a human must look
        before the audit goes green again."""
        queue = WorkQueue(tmp_path / "q")
        ensure_enqueued(queue, tiny_tasks())
        queue.manifest_path.write_text("{corrupt")
        assert main(["doctor", str(tmp_path / "q"), "--repair"]) == 1
        assert not queue.manifest_path.exists()
        assert queue.quarantine_count() == 1

    def test_json_output(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path / "q")
        ensure_enqueued(queue, tiny_tasks())
        assert main(["doctor", str(tmp_path / "q"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["repair"] is False
        assert isinstance(doc["findings"], list)

    def test_missing_queue_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path / "ghost")]) == 1
