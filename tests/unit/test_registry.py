"""Tests for the scheduler factory."""

import pytest

from repro.core.mrsch import MRSchScheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sched.ga import GAScheduler
from repro.sched.registry import available_schedulers, make_scheduler
from repro.sched.scalar_rl import ScalarRLScheduler


def test_available_names():
    assert set(available_schedulers()) == {
        "heuristic",
        "optimization",
        "scalar_rl",
        "mrsch",
    }


@pytest.mark.parametrize(
    "name,cls",
    [
        ("heuristic", FCFSScheduler),
        ("optimization", GAScheduler),
        ("scalar_rl", ScalarRLScheduler),
        ("mrsch", MRSchScheduler),
    ],
)
def test_factory_types(name, cls, tiny_system):
    sched = make_scheduler(name, tiny_system, window_size=4, seed=0)
    assert isinstance(sched, cls)
    assert sched.window_size == 4


def test_case_insensitive(tiny_system):
    assert isinstance(make_scheduler("HEURISTIC", tiny_system), FCFSScheduler)


def test_unknown_name(tiny_system):
    with pytest.raises(KeyError, match="unknown scheduler"):
        make_scheduler("slurm", tiny_system)


def test_kwargs_forwarded(tiny_system):
    sched = make_scheduler("heuristic", tiny_system, backfill=False)
    assert sched.backfill_enabled is False
