"""Unit tests for the storage seam (repro.dist.store).

Covers the errno taxonomy, the seeded-backoff retry schedule (property
tests pin determinism and boundedness), CRC32 line/payload sealing, and
the deterministic IO fault injector's window semantics.
"""

from __future__ import annotations

import errno
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.store import (
    CHECKSUM_KEY,
    PERMANENT_ERRNOS,
    TRANSIENT_ERRNOS,
    RetryPolicy,
    Store,
    StoreUnavailable,
    classify_errno,
    seal_json_payload,
    seal_line,
    unseal_line,
    verify_sealed_payload,
)


def quiet_store(plan: FaultPlan | None = None, **kwargs) -> tuple[Store, list]:
    """A store that never actually sleeps; returns (store, recorded sleeps)."""
    sleeps: list[float] = []
    kwargs.setdefault("retry", RetryPolicy(seed="test-worker"))
    store = Store(
        faults=FaultInjector(plan) if plan is not None else None,
        sleep=sleeps.append,
        **kwargs,
    )
    return store, sleeps


class TestErrnoClassification:
    @pytest.mark.parametrize(
        ("code", "kind"),
        [
            (errno.EIO, "transient"),
            (errno.ESTALE, "transient"),
            (errno.ETIMEDOUT, "transient"),
            (errno.EAGAIN, "transient"),
            (errno.EBUSY, "transient"),
            (errno.EINTR, "transient"),
            (errno.ENOSPC, "permanent"),
            (errno.EROFS, "permanent"),
            (errno.EDQUOT, "permanent"),
            (errno.ENOENT, "semantic"),
            (errno.EEXIST, "semantic"),
            (errno.EISDIR, "semantic"),
            (errno.EACCES, "semantic"),
            (None, "semantic"),
        ],
    )
    def test_table(self, code, kind):
        assert classify_errno(code) == kind

    def test_transient_and_permanent_are_disjoint(self):
        assert not (TRANSIENT_ERRNOS & PERMANENT_ERRNOS)


class TestRetryPolicy:
    def test_schedule_is_reproducible_per_seed(self):
        a = RetryPolicy(seed="worker-1")
        assert a.delays() == RetryPolicy(seed="worker-1").delays()
        assert a.delays() != RetryPolicy(seed="worker-2").delays()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.text(max_size=24),
        max_retries=st.integers(min_value=0, max_value=8),
        base=st.floats(min_value=0.001, max_value=0.5),
        cap=st.floats(min_value=0.5, max_value=4.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_schedule_is_deterministic_and_bounded(
        self, seed, max_retries, base, cap, jitter
    ):
        policy = RetryPolicy(
            max_retries=max_retries, base_delay_s=base, max_delay_s=cap,
            jitter=jitter, seed=seed,
        )
        delays = policy.delays()
        # Deterministic: same seed, same schedule, every time.
        assert delays == policy.delays()
        assert len(delays) == max_retries
        # Bounded: each delay under the cap (plus maximal jitter), the
        # total under the closed-form upper bound.
        assert all(0.0 <= d <= cap * (1.0 + jitter) + 1e-9 for d in delays)
        assert sum(delays) <= policy.max_total_wait_s() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.text(max_size=24))
    def test_store_sleeps_exactly_the_policy_schedule(self, seed):
        """The live retry loop and the published schedule agree."""
        import tempfile
        from pathlib import Path

        policy = RetryPolicy(max_retries=3, seed=seed)
        plan = FaultPlan(
            io_faults=[{"op": "read", "errno": "EIO", "count": 0}]
        )
        store, sleeps = quiet_store(plan, retry=policy)
        with tempfile.TemporaryDirectory() as tmp:
            target = Path(tmp) / "f.json"
            target.write_text("{}")
            with pytest.raises(StoreUnavailable):
                store.read_text(target)
        assert sleeps == policy.delays()


class TestSealing:
    def test_line_roundtrip(self):
        sealed = seal_line('{"key": "k1"}')
        body, verdict = unseal_line(sealed)
        assert body == '{"key": "k1"}' and verdict is True

    def test_corrupted_line_fails_verdict(self):
        sealed = seal_line('{"key": "k1"}')
        body, verdict = unseal_line(sealed.replace("k1", "kX"))
        assert verdict is False

    def test_unsealed_line_is_legacy(self):
        body, verdict = unseal_line('{"key": "k1"}')
        assert body == '{"key": "k1"}' and verdict is None

    def test_payload_roundtrip_and_tamper_detection(self):
        payload = {"method": "heuristic", "seed": 3}
        sealed = seal_json_payload(payload)
        assert CHECKSUM_KEY in sealed
        body, verdict = verify_sealed_payload(sealed)
        assert body == payload and verdict is True
        sealed["seed"] = 4
        _, verdict = verify_sealed_payload(sealed)
        assert verdict is False

    def test_unsealed_payload_is_legacy(self):
        _, verdict = verify_sealed_payload({"method": "heuristic"})
        assert verdict is None

    def test_sealing_is_stable_under_resealing(self):
        payload = {"a": 1}
        assert seal_json_payload(seal_json_payload(payload)) == (
            seal_json_payload(payload)
        )


class TestFaultInjectorWindows:
    def plan(self, **entry) -> FaultInjector:
        entry.setdefault("errno", "EIO")
        return FaultInjector(FaultPlan(io_faults=[entry]))

    def test_nth_fires_on_exactly_the_nth_match(self):
        injector = self.plan(op="write", nth=2, count=1)
        assert injector.on_io("write", "/q/a") is None
        assert injector.on_io("read", "/q/a") is None  # op filter
        assert injector.on_io("write", "/q/b") is not None
        assert injector.on_io("write", "/q/c") is None  # window closed

    def test_count_zero_fires_forever(self):
        injector = self.plan(op="any", count=0)
        for _ in range(5):
            assert injector.on_io("unlink", "/q/x") is not None

    def test_path_pattern_matches_anywhere(self):
        injector = self.plan(path="results/*")
        assert injector.on_io("write", "/tmp/q/results/j.jsonl") is not None
        assert injector.on_io("write", "/tmp/q/tasks/t.json") is None

    def test_match_counters_are_observable(self):
        injector = self.plan(op="write", nth=3, count=1)
        for _ in range(4):
            injector.on_io("write", "/q/a")
        assert injector.io_matches == [4]
        assert injector.io_fired == [1]

    def test_entry_validation(self):
        with pytest.raises(ValueError, match="errno"):
            FaultPlan(io_faults=[{"errno": "NOT_AN_ERRNO"}])
        with pytest.raises(ValueError, match="op"):
            FaultPlan(io_faults=[{"op": "chmod", "errno": "EIO"}])
        with pytest.raises(ValueError, match="nth"):
            FaultPlan(io_faults=[{"errno": "EIO", "nth": 0}])
        with pytest.raises(ValueError, match="scripts nothing"):
            FaultPlan(io_faults=[{"path": "*"}])

    def test_plan_json_roundtrip_with_io_faults(self):
        plan = FaultPlan(
            io_faults=[{"op": "append", "errno": "ENOSPC", "count": 0}]
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestStoreRetry:
    def test_transient_fault_is_retried_to_success(self, tmp_path):
        plan = FaultPlan(io_faults=[{"op": "write", "errno": "EIO", "count": 2}])
        store, sleeps = quiet_store(plan)
        store.atomic_write_json(tmp_path / "f.json", {"ok": True})
        assert json.loads((tmp_path / "f.json").read_text()) == {"ok": True}
        assert len(sleeps) == 2  # two backoffs, third attempt landed

    def test_exhausted_retries_escalate(self, tmp_path):
        plan = FaultPlan(io_faults=[{"op": "write", "errno": "ESTALE", "count": 0}])
        store, _ = quiet_store(plan, retry=RetryPolicy(max_retries=2, seed="x"))
        with pytest.raises(StoreUnavailable) as exc_info:
            store.atomic_write_json(tmp_path / "f.json", {})
        assert not exc_info.value.permanent
        assert exc_info.value.attempts == 3  # initial + 2 retries
        assert "ESTALE" in str(exc_info.value)

    def test_permanent_fault_escalates_immediately(self, tmp_path):
        plan = FaultPlan(io_faults=[{"op": "append", "errno": "ENOSPC", "count": 0}])
        store, sleeps = quiet_store(plan)
        with pytest.raises(StoreUnavailable) as exc_info:
            store.fsync_append(tmp_path / "j.jsonl", "line")
        assert exc_info.value.permanent
        assert sleeps == []  # no retry budget burned on a full volume

    def test_semantic_errors_propagate_untouched(self, tmp_path):
        store, sleeps = quiet_store()
        with pytest.raises(FileNotFoundError):
            store.read_text(tmp_path / "missing.json")
        assert sleeps == []

    def test_create_excl_lost_race_is_not_an_error(self, tmp_path):
        store, _ = quiet_store()
        assert store.create_excl_json(tmp_path / "lease.json", {"o": "a"})
        assert not store.create_excl_json(tmp_path / "lease.json", {"o": "b"})
        assert json.loads((tmp_path / "lease.json").read_text()) == {"o": "a"}

    def test_metrics_count_retries(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        plan = FaultPlan(io_faults=[{"op": "write", "errno": "EIO", "count": 1}])
        store, _ = quiet_store(plan, metrics=registry)
        store.atomic_write_json(tmp_path / "f.json", {})
        snapshot = registry.snapshot()
        assert snapshot["counters"]["store.retries"] == 1

    def test_slow_io_fault_only_delays(self, tmp_path):
        plan = FaultPlan(io_faults=[{"op": "read", "delay_s": 0.25, "count": 1}])
        store, sleeps = quiet_store(plan)
        (tmp_path / "f.json").write_text('{"a": 1}')
        assert store.read_json(tmp_path / "f.json") == {"a": 1}
        assert sleeps == [0.25]


class TestTornAppendRecovery:
    def test_torn_append_retry_never_merges_fragment_into_record(self, tmp_path):
        """The newline guard strands the fragment on its own line."""
        plan = FaultPlan(
            io_faults=[{"op": "append", "errno": "EIO", "count": 1, "torn": True}]
        )
        store, _ = quiet_store(plan)
        path = tmp_path / "j.jsonl"
        line = seal_line(json.dumps({"key": "k1", "pad": "x" * 64}))
        store.fsync_append(path, line)
        raw_lines = [ln for ln in path.read_text().split("\n") if ln]
        # The full sealed record landed intact on its own line…
        assert line in raw_lines
        # …and the stranded prefix is a *separate* line that fails its
        # checksum (or has none), never an extension of the good record.
        fragments = [ln for ln in raw_lines if ln != line]
        assert len(fragments) == 1
        assert unseal_line(fragments[0])[1] is not True

    def test_clean_append_stays_single_line(self, tmp_path):
        store, _ = quiet_store()
        path = tmp_path / "j.jsonl"
        store.fsync_append(path, "one")
        store.fsync_append(path, "two")
        assert path.read_text() == "one\ntwo\n"
