"""Tests for the scalar-reward policy-gradient baseline."""

import numpy as np
import pytest

from repro.cluster.resources import ResourcePool
from repro.sched.scalar_rl import ScalarRLScheduler
from repro.sim.simulator import Simulator
from tests.conftest import make_job
from tests.unit.test_base_sched import make_ctx


@pytest.fixture
def sched(tiny_system):
    return ScalarRLScheduler(tiny_system, window_size=4, seed=0)


class TestConstruction:
    def test_obs_dim(self, tiny_system):
        s = ScalarRLScheduler(tiny_system, window_size=4, seed=0)
        # 4 slots * (2 resources + 2) + 2 global free fractions
        assert s.obs_dim == 4 * 4 + 2

    def test_default_weights_equal(self, sched):
        assert sched.reward_weights == {"node": 0.5, "burst_buffer": 0.5}

    def test_weights_must_sum_to_one(self, tiny_system):
        with pytest.raises(ValueError):
            ScalarRLScheduler(
                tiny_system, reward_weights={"node": 0.9, "burst_buffer": 0.9}
            )


class TestEncoding:
    def test_shapes_and_mask(self, sched, tiny_system):
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=1, nodes=8, bb=4)]
        ctx = make_ctx(tiny_system, pool, list(window))
        obs, mask = sched.encode(window, ctx)
        assert obs.shape == (sched.obs_dim,)
        assert mask.tolist() == [True, False, False, False]

    def test_request_fractions(self, sched, tiny_system):
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=1, nodes=8, bb=4)]
        ctx = make_ctx(tiny_system, pool, list(window))
        obs, _ = sched.encode(window, ctx)
        assert obs[0] == pytest.approx(8 / 16)
        assert obs[1] == pytest.approx(4 / 8)

    def test_free_fraction_tail(self, sched, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=9, nodes=8), now=0.0)
        window = [make_job(job_id=1, nodes=1)]
        ctx = make_ctx(tiny_system, pool, list(window))
        obs, _ = sched.encode(window, ctx)
        assert obs[-2] == pytest.approx(0.5)  # node free fraction
        assert obs[-1] == pytest.approx(1.0)  # bb free fraction


class TestReward:
    def test_fixed_weight_reward(self, sched, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=1, nodes=16, bb=0), now=0.0)
        ctx = make_ctx(tiny_system, pool, [])
        assert sched.reward(ctx) == pytest.approx(0.5 * 1.0 + 0.5 * 0.0)


class TestPolicy:
    def test_select_returns_window_job(self, sched, tiny_system):
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=i, nodes=1) for i in (1, 2, 3)]
        ctx = make_ctx(tiny_system, pool, list(window))
        job = sched.select(window, ctx)
        assert job in window

    def test_eval_mode_deterministic(self, tiny_system):
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=i, nodes=1) for i in (1, 2, 3)]
        s = ScalarRLScheduler(tiny_system, window_size=4, seed=5)
        ctx = make_ctx(tiny_system, pool, list(window))
        picks = {s.select(window, ctx).job_id for _ in range(10)}
        assert len(picks) == 1

    def test_invalid_slots_never_sampled(self, tiny_system):
        s = ScalarRLScheduler(tiny_system, window_size=4, seed=6)
        s.training = True
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=1, nodes=1), make_job(job_id=2, nodes=1)]
        ctx = make_ctx(tiny_system, pool, list(window))
        for _ in range(25):
            assert s.select(window, ctx).job_id in (1, 2)


class TestTraining:
    def test_finish_episode_empty(self, sched):
        assert sched.finish_episode() == 0.0

    def test_finish_episode_updates_params(self, tiny_system, theta_trace):
        s = ScalarRLScheduler(tiny_system, window_size=4, seed=7)
        before = s.policy.state_dict()
        sim = Simulator(tiny_system, s, record_timeline=False)
        s.training = True
        s.start_episode()
        jobs = [j.copy() for j in theta_trace[:30]]
        for j in jobs:
            j.requests["node"] = min(j.requests["node"], 16)
            j.requests["burst_buffer"] = 0
        sim.run(jobs)
        assert len(s._episode) > 0
        loss = s.finish_episode()
        after = s.policy.state_dict()
        changed = any(
            not np.array_equal(before[k], after[k]) for k in before
        )
        assert changed
        assert s._episode == []
        assert np.isfinite(loss)

    def test_episode_buffer_only_fills_in_training(self, sched, tiny_system):
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=1, nodes=1)]
        ctx = make_ctx(tiny_system, pool, list(window))
        sched.select(window, ctx)
        assert sched._episode == []
