"""Tests for the Theta-like trace generator."""

import numpy as np
import pytest

from repro.cluster.resources import NODE
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace


class TestConfigValidation:
    def test_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            ThetaTraceConfig(total_nodes=0)

    def test_rejects_negative_jobs(self):
        with pytest.raises(ValueError):
            ThetaTraceConfig(n_jobs=-1)

    def test_rejects_bad_interarrival(self):
        with pytest.raises(ValueError):
            ThetaTraceConfig(mean_interarrival=0.0)

    def test_rejects_bad_runtime_bounds(self):
        with pytest.raises(ValueError):
            ThetaTraceConfig(min_runtime=100.0, max_runtime=10.0)

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError):
            ThetaTraceConfig(hourly_profile=np.ones(5))


class TestGeneration:
    def test_deterministic_under_seed(self):
        cfg = ThetaTraceConfig(n_jobs=50)
        a = generate_theta_trace(cfg, seed=9)
        b = generate_theta_trace(cfg, seed=9)
        assert [(j.submit_time, j.runtime, j.requests) for j in a] == [
            (j.submit_time, j.runtime, j.requests) for j in b
        ]

    def test_different_seeds_differ(self):
        cfg = ThetaTraceConfig(n_jobs=50)
        a = generate_theta_trace(cfg, seed=1)
        b = generate_theta_trace(cfg, seed=2)
        assert any(x.runtime != y.runtime for x, y in zip(a, b))

    def test_empty_trace(self):
        assert generate_theta_trace(ThetaTraceConfig(n_jobs=0), seed=0) == []

    def test_sorted_by_submit_with_sequential_ids(self):
        jobs = generate_theta_trace(ThetaTraceConfig(n_jobs=100), seed=3)
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)
        assert [j.job_id for j in jobs] == list(range(1, 101))

    def test_bounds_respected(self):
        cfg = ThetaTraceConfig(total_nodes=64, n_jobs=300)
        jobs = generate_theta_trace(cfg, seed=4)
        for job in jobs:
            assert 1 <= job.request(NODE) <= 64
            assert cfg.min_runtime <= job.runtime <= cfg.max_runtime
            assert job.walltime >= job.runtime

    def test_overestimate_bounded(self):
        cfg = ThetaTraceConfig(n_jobs=300, max_overestimate=3.0, p_round_walltime=0.0)
        jobs = generate_theta_trace(cfg, seed=5)
        for job in jobs:
            assert job.walltime <= 3.0 * job.runtime + 1e-9

    def test_power_of_two_bias(self):
        cfg = ThetaTraceConfig(
            total_nodes=128, n_jobs=1000, p_power_of_two=1.0, p_capability=0.0
        )
        jobs = generate_theta_trace(cfg, seed=6)
        sizes = np.array([j.request(NODE) for j in jobs])
        assert np.all((sizes & (sizes - 1)) == 0)  # all powers of two

    def test_capability_runs_large(self):
        cfg = ThetaTraceConfig(
            total_nodes=128, n_jobs=500, p_capability=1.0, p_power_of_two=0.0
        )
        jobs = generate_theta_trace(cfg, seed=7)
        assert all(j.request(NODE) >= 64 for j in jobs)

    def test_mean_interarrival_approximate(self):
        cfg = ThetaTraceConfig(n_jobs=2000, mean_interarrival=100.0, diurnal=False)
        jobs = generate_theta_trace(cfg, seed=8)
        gaps = np.diff([j.submit_time for j in jobs])
        assert 80.0 < gaps.mean() < 120.0

    def test_diurnal_modulation_changes_hourly_counts(self):
        cfg = ThetaTraceConfig(n_jobs=5000, mean_interarrival=60.0, diurnal=True)
        jobs = generate_theta_trace(cfg, seed=9)
        hours = (np.array([j.submit_time for j in jobs]) // 3600 % 24).astype(int)
        counts = np.bincount(hours, minlength=24)
        # Peak working hours should clearly out-submit the small hours.
        assert counts[10:16].mean() > 1.5 * counts[0:5].mean()
