"""Tests for ResourceSpec, SystemConfig and ResourcePool (with
hypothesis property tests on pool invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import (
    BURST_BUFFER,
    NODE,
    ResourcePool,
    ResourceSpec,
    SystemConfig,
)
from tests.conftest import make_job


class TestSpecs:
    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            ResourceSpec("x", 0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ResourceSpec("", 4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SystemConfig(resources=(ResourceSpec("a", 1), ResourceSpec("a", 2)))

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(resources=())

    def test_theta_scale(self):
        theta = SystemConfig.theta()
        assert theta.capacity(NODE) == 4392
        assert theta.capacity(BURST_BUFFER) == 1290

    def test_with_power_appends(self, tiny_system):
        powered = tiny_system.with_power(50)
        assert powered.names == [NODE, BURST_BUFFER, "power"]
        assert powered.capacity("power") == 50

    def test_unknown_capacity_raises(self, tiny_system):
        with pytest.raises(KeyError):
            tiny_system.capacity("gpu")

    def test_validate_job(self, tiny_system):
        tiny_system.validate_job(make_job(nodes=16, bb=8))
        with pytest.raises(ValueError, match="capacity"):
            tiny_system.validate_job(make_job(nodes=17))
        with pytest.raises(ValueError, match="unknown resource"):
            tiny_system.validate_job(make_job(nodes=1, gpu=1))


class TestPoolBasics:
    def test_initially_all_free(self, tiny_system):
        pool = ResourcePool(tiny_system)
        assert pool.free_units(NODE) == 16
        assert pool.utilization(NODE) == 0.0

    def test_allocate_release_cycle(self, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(nodes=5, bb=2, walltime=500.0, runtime=500.0)
        pool.allocate(job, now=10.0)
        assert pool.free_units(NODE) == 11
        assert pool.free_units(BURST_BUFFER) == 6
        assert pool.utilization(NODE) == pytest.approx(5 / 16)
        pool.release(job)
        assert pool.free_units(NODE) == 16
        assert pool.busy_units(BURST_BUFFER) == 0

    def test_zero_request_resource_untouched(self, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(nodes=3, bb=0)
        pool.allocate(job, now=0.0)
        assert pool.free_units(BURST_BUFFER) == 8
        assert BURST_BUFFER not in job.allocation

    def test_double_allocate_rejected(self, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(nodes=1)
        pool.allocate(job, now=0.0)
        with pytest.raises(RuntimeError, match="already allocated"):
            pool.allocate(job, now=1.0)

    def test_allocate_without_fit_rejected(self, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=1, nodes=16), now=0.0)
        with pytest.raises(RuntimeError, match="does not fit"):
            pool.allocate(make_job(job_id=2, nodes=1), now=0.0)

    def test_release_unallocated_rejected(self, tiny_system):
        pool = ResourcePool(tiny_system)
        with pytest.raises(RuntimeError, match="no allocation"):
            pool.release(make_job())

    def test_reset(self, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(nodes=4), now=0.0)
        pool.reset()
        assert pool.free_units(NODE) == 16
        assert pool.running_jobs() == []

    def test_can_fit(self, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=1, nodes=10, bb=8), now=0.0)
        assert pool.can_fit(make_job(job_id=2, nodes=6, bb=0))
        assert not pool.can_fit(make_job(job_id=3, nodes=6, bb=1))
        assert not pool.can_fit(make_job(job_id=4, nodes=7, bb=0))


class TestUnitState:
    def test_free_units_encode_zero(self, tiny_system):
        pool = ResourcePool(tiny_system)
        avail, ttf = pool.unit_state(NODE, now=0.0)
        np.testing.assert_array_equal(avail, np.ones(16))
        np.testing.assert_array_equal(ttf, np.zeros(16))

    def test_busy_units_show_walltime_remaining(self, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(nodes=4, runtime=100.0, walltime=1000.0)
        pool.allocate(job, now=50.0)
        avail, ttf = pool.unit_state(NODE, now=250.0)
        assert avail.sum() == 12
        busy_ttf = ttf[avail == 0]
        # est free = 50 + 1000 = 1050; remaining at t=250 is 800.
        np.testing.assert_allclose(busy_ttf, 800.0)

    def test_overdue_units_clamp_to_zero(self, tiny_system):
        """A job running past its estimate shows 0 time-to-free, not negative."""
        pool = ResourcePool(tiny_system)
        job = make_job(nodes=2, runtime=100.0, walltime=100.0)
        pool.allocate(job, now=0.0)
        _, ttf = pool.unit_state(NODE, now=500.0)
        assert np.all(ttf >= 0.0)


class TestEarliestFit:
    def test_empty_pool_fits_now(self, tiny_system):
        pool = ResourcePool(tiny_system)
        assert pool.earliest_fit_time(make_job(nodes=16, bb=8), now=42.0) == 42.0

    def test_waits_for_kth_unit(self, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=1, nodes=10, walltime=1000.0, runtime=1000.0), now=0.0)
        pool.allocate(make_job(job_id=2, nodes=6, walltime=500.0, runtime=500.0), now=0.0)
        # 12 nodes requested: all 6 short-job nodes free at 500, need 6
        # more from the 10 freeing at 1000.
        assert pool.earliest_fit_time(make_job(job_id=3, nodes=12), now=0.0) == 1000.0
        # 6 nodes: satisfied when the short job ends.
        assert pool.earliest_fit_time(make_job(job_id=4, nodes=6), now=0.0) == 500.0

    def test_max_over_resources(self, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=1, nodes=16, walltime=100.0, runtime=100.0), now=0.0)
        pool.allocate(make_job(job_id=2, nodes=0, bb=8, walltime=900.0, runtime=900.0), now=0.0)
        job = make_job(job_id=3, nodes=1, bb=1)
        assert pool.earliest_fit_time(job, now=0.0) == 900.0

    def test_request_exceeding_capacity_raises(self, tiny_system):
        pool = ResourcePool(tiny_system)
        with pytest.raises(ValueError):
            pool.earliest_fit_time(make_job(nodes=99), now=0.0)

    def test_free_units_at(self, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=1, nodes=10, walltime=300.0, runtime=300.0), now=0.0)
        assert pool.free_units_at(NODE, when=0.0, now=0.0) == 6
        assert pool.free_units_at(NODE, when=300.0, now=0.0) == 16


# -- property tests -----------------------------------------------------------

job_requests = st.tuples(st.integers(1, 8), st.integers(0, 4))


@settings(max_examples=50, deadline=None)
@given(st.lists(job_requests, min_size=1, max_size=20))
def test_pool_conservation_property(reqs):
    """Allocate greedily then release everything: pool returns to initial
    state and free+busy always equals capacity."""
    system = SystemConfig(
        resources=(ResourceSpec(NODE, 8), ResourceSpec(BURST_BUFFER, 4))
    )
    pool = ResourcePool(system)
    allocated = []
    for i, (nodes, bb) in enumerate(reqs):
        job = make_job(job_id=i, nodes=min(nodes, 8), bb=min(bb, 4), runtime=10.0)
        if pool.can_fit(job):
            pool.allocate(job, now=0.0)
            allocated.append(job)
        for name in (NODE, BURST_BUFFER):
            assert pool.free_units(name) + pool.busy_units(name) == system.capacity(name)
    for job in allocated:
        pool.release(job)
    assert pool.free_units(NODE) == 8
    assert pool.free_units(BURST_BUFFER) == 4
    assert pool.running_jobs() == []


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 8), st.floats(1.0, 1e4), st.floats(0.0, 1e4)),
        min_size=1,
        max_size=10,
    )
)
def test_earliest_fit_never_before_now(jobs_data):
    system = SystemConfig(resources=(ResourceSpec(NODE, 8),))
    pool = ResourcePool(system)
    now = 0.0
    for i, (nodes, walltime, gap) in enumerate(jobs_data):
        job = make_job(job_id=i, nodes=nodes, runtime=walltime, walltime=walltime, bb=0)
        job.requests.pop(BURST_BUFFER, None)
        if pool.can_fit(job):
            pool.allocate(job, now=now)
        probe = make_job(job_id=1000 + i, nodes=nodes, bb=0)
        probe.requests.pop(BURST_BUFFER, None)
        t = pool.earliest_fit_time(probe, now=now)
        assert t >= now
        now += gap
