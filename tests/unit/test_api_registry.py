"""Tests for the pluggable component registries (repro.api.registry)."""

import pytest

from repro.api.registry import (
    SCHEDULERS,
    SYSTEMS,
    WORKLOADS,
    paper_methods,
    paper_workloads,
    register_scheduler,
    register_system,
    register_workload,
)
from repro.sched.base import Scheduler


class TestBuiltins:
    def test_paper_methods_registered(self):
        assert paper_methods() == ("mrsch", "optimization", "scalar_rl", "heuristic")

    def test_paper_workloads_registered(self):
        assert paper_workloads() == ("S1", "S2", "S3", "S4", "S5")
        assert paper_workloads(case_study=True) == ("S6", "S7", "S8", "S9", "S10")

    def test_builtin_systems(self):
        assert set(SYSTEMS.names()) >= {"mini_theta", "theta"}

    def test_capability_metadata(self):
        mrsch = SCHEDULERS.get("mrsch")
        assert mrsch.trainable and mrsch.paper and mrsch.seeded
        heuristic = SCHEDULERS.get("heuristic")
        assert not heuristic.trainable and not heuristic.seeded
        assert SCHEDULERS.get("scalar_rl").capabilities()["goal_options"] == ["weights"]
        assert WORKLOADS.get("S6").case_study and not WORKLOADS.get("S1").case_study

    def test_case_insensitive_scheduler_lookup(self):
        assert SCHEDULERS.get("MRSch").name == "mrsch"

    def test_case_insensitive_lookup_of_uppercase_names(self):
        """Folding must work both directions: 's1' finds the uppercase
        builtin 'S1', and a mixed-case plugin is found by any spelling."""
        assert WORKLOADS.get("s1").name == "S1"
        assert "s1" in WORKLOADS
        register_scheduler("SiteLocal")(lambda system, **kw: None)
        try:
            assert SCHEDULERS.get("sitelocal").name == "SiteLocal"
        finally:
            # unregister folds case too — a variant spelling must not no-op
            SCHEDULERS.unregister("sitelocal")
        assert "SiteLocal" not in SCHEDULERS


class TestLookupErrors:
    def test_unknown_scheduler_lists_available(self):
        with pytest.raises(KeyError, match="unknown scheduler 'slurm'.*heuristic"):
            SCHEDULERS.get("slurm")

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload 'S99'"):
            WORKLOADS.get("S99")

    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown system"):
            SYSTEMS.get("frontier")

    def test_contains(self):
        assert "mrsch" in SCHEDULERS
        assert "slurm" not in SCHEDULERS


class TestRegistration:
    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("heuristic")(lambda system, **kw: None)

    def test_case_variant_duplicate_rejected(self):
        """Lookup is case-insensitive, so 'Heuristic' must not be able
        to shadow the builtin 'heuristic' for some spellings only."""
        with pytest.raises(ValueError, match="already registered \\(as 'heuristic'\\)"):
            register_scheduler("Heuristic")(lambda system, **kw: None)
        assert SCHEDULERS.get("Heuristic").name == "heuristic"

    def test_register_and_unregister_scheduler(self):
        @register_scheduler("toy_noop", description="toy", seeded=False)
        class ToyScheduler(Scheduler):
            name = "toy_noop"

            def select(self, window, ctx):
                return window[0] if window else None

        try:
            assert "toy_noop" in SCHEDULERS
            assert SCHEDULERS.get("toy_noop").description == "toy"
        finally:
            SCHEDULERS.unregister("toy_noop")
        assert "toy_noop" not in SCHEDULERS

    def test_signature_adaptation_for_plain_classes(self, tiny_system):
        """A Scheduler subclass registers directly: system/seed args it
        does not declare are filtered out, declared ones arrive."""

        @register_scheduler("toy_sig")
        class SigScheduler(Scheduler):
            name = "toy_sig"

            def __init__(self, window_size=10, backfill=True):
                super().__init__(window_size=window_size, backfill=backfill)

            def select(self, window, ctx):
                return None

        try:
            sched = SCHEDULERS.get("toy_sig").build(tiny_system, window_size=4, seed=9)
            assert isinstance(sched, SigScheduler)
            assert sched.window_size == 4
        finally:
            SCHEDULERS.unregister("toy_sig")

    def test_register_workload_builder(self, tiny_system):
        @register_workload("toy_wl", description="node-only copy")
        def build_toy(base_jobs, system, seed):
            jobs = [j.copy() for j in base_jobs]
            for job in jobs:
                job.requests["burst_buffer"] = 0
            return jobs

        try:
            from repro.workload.suites import build_workload
            from tests.conftest import make_job

            base = [make_job(job_id=i, nodes=2, bb=3) for i in range(1, 4)]
            jobs = build_workload("toy_wl", base, tiny_system, seed=1)
            assert all(j.request("burst_buffer") == 0 for j in jobs)
            assert all(j.request("burst_buffer") == 3 for j in base)
        finally:
            WORKLOADS.unregister("toy_wl")

    def test_register_system_factory(self):
        from repro.cluster.resources import ResourceSpec, SystemConfig

        @register_system("toy_sys")
        def build_sys(nodes=4):
            return SystemConfig(resources=(ResourceSpec("node", nodes),))

        try:
            from repro.api.facade import make_system

            assert make_system("toy_sys", nodes=6).capacity("node") == 6
        finally:
            SYSTEMS.unregister("toy_sys")


class TestCanonicalNames:
    def test_config_options_inject_experiment_knobs(self, tiny_system):
        """A plugin declaring config_options receives ExperimentConfig
        attributes without any name-based special case in the harness."""
        from repro.experiments.harness import ExperimentConfig, make_method

        built = {}

        @register_scheduler(
            "toy_cfg", config_options={"ga_config": "budget"},
            allowed_kwargs=("budget",),
        )
        def make_toy(system, window_size=10, seed=None, budget=None):
            built["budget"] = budget
            from repro.sched.fcfs import FCFSScheduler

            return FCFSScheduler(window_size=window_size)

        try:
            config = ExperimentConfig(nodes=16, bb_units=8)
            make_method("toy_cfg", tiny_system, config)
            assert built["budget"] is config.ga_config
        finally:
            SCHEDULERS.unregister("toy_cfg")

    def test_make_method_ga_budget_survives_alternate_spelling(self, tiny_system):
        """Case-insensitive lookup must not bypass the harness's
        ga_config injection for the optimization method."""
        from repro.experiments.harness import ExperimentConfig, make_method
        from repro.sched.ga import NSGA2Config

        config = ExperimentConfig(
            nodes=16, bb_units=8, ga_config=NSGA2Config(population=4, generations=2)
        )
        sched = make_method("Optimization", tiny_system, config)
        assert sched.config.population == 4
        assert sched.config.generations == 2


class TestLegacyShim:
    """The old sched.registry entry points keep working (deprecation shims)."""

    def test_run_comparison_preserves_caller_spelling(self):
        """Case-insensitive method names stay usable as result keys, as
        they were before the registry rewrite."""
        from repro.experiments.harness import ExperimentConfig, run_comparison

        config = ExperimentConfig(nodes=32, bb_units=16, n_jobs=20, window_size=5)
        reports = run_comparison(["S1"], ["Heuristic"], config, train=False)
        assert list(reports["S1"]) == ["Heuristic"]

    def test_compare_preserves_caller_spelling_per_seed(self):
        from repro.api.facade import compare
        from repro.experiments.harness import ExperimentConfig

        config = ExperimentConfig(nodes=32, bb_units=16, n_jobs=20, window_size=5)
        reports = compare(
            ["S1"], ["Heuristic"], config, seeds=[5, 6], train=False
        )
        assert set(reports["S1"]) == {"Heuristic@5", "Heuristic@6"}

    def test_compare_rejects_workload_missing_required_resources(self):
        """A substituted config is validated against the workloads'
        resource requirements, not just the scenario's own system."""
        from repro.api.facade import compare
        from repro.api.registry import SYSTEMS, register_system
        from repro.cluster.resources import ResourceSpec, SystemConfig
        from repro.experiments.harness import ExperimentConfig

        @register_system("toy_ab_only")
        def build_ab():
            return SystemConfig(
                resources=(ResourceSpec("A", 10), ResourceSpec("B", 10))
            )

        try:
            config = ExperimentConfig(system_name="toy_ab_only")
            with pytest.raises(ValueError, match="requires resource.*'node'"):
                compare(["S1"], ["heuristic"], config, train=False)
        finally:
            SYSTEMS.unregister("toy_ab_only")

    def test_compare_validates_against_the_callers_system(self):
        """A plugin workload whose resource needs are met by the config's
        (non-default) system runs through compare()."""
        from repro.api.facade import compare
        from repro.api.registry import (
            SYSTEMS,
            WORKLOADS,
            register_system,
            register_workload,
        )
        from repro.experiments.harness import ExperimentConfig
        from repro.workload.suites import build_workload, powered_system

        @register_system("toy_powered")
        def build_powered(nodes=32, bb_units=16):
            from repro.cluster.resources import SystemConfig

            return powered_system(SystemConfig.mini_theta(nodes, bb_units))

        @register_workload(
            "toy_pw_mix", requires=("node", "burst_buffer", "power")
        )
        def build_pw_mix(base_jobs, system, seed):
            return build_workload("S6", base_jobs, system, seed=seed)

        try:
            config = ExperimentConfig(
                nodes=32, bb_units=16, n_jobs=20, window_size=5,
                system_name="toy_powered",
            )
            reports = compare(["toy_pw_mix"], ["heuristic"], config, train=False)
            assert reports["toy_pw_mix"]["heuristic"].n_jobs == 20
        finally:
            SYSTEMS.unregister("toy_powered")
            WORKLOADS.unregister("toy_pw_mix")

    def test_make_scheduler_forwards_kwargs(self, tiny_system):
        from repro.sched.registry import make_scheduler

        sched = make_scheduler("heuristic", tiny_system, backfill=False)
        assert sched.backfill_enabled is False

    def test_available_schedulers_matches_registry(self):
        from repro.sched.registry import available_schedulers

        assert set(SCHEDULERS.names()) == set(available_schedulers())
