"""Property test pinning the optimized ResourcePool to a naive reference.

The pool's incremental accounting (free counters, the lazily-invalidated
sorted estimated-free-time arrays behind ``earliest_fit_time`` /
``free_units_at``) must be *bit-identical* to the straightforward
implementation that recomputes everything from the raw per-unit arrays.
The reference below is exactly that seed-era implementation, retained
here as executable documentation of the contract; hypothesis drives both
through randomized allocate/release/query sequences.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import BURST_BUFFER, NODE, ResourcePool, ResourceSpec, SystemConfig
from tests.conftest import make_job


class NaiveReferencePool:
    """Order-statistic queries recomputed from scratch on every call.

    Operates on the *same* per-unit busy/est-free state as the optimized
    pool (read straight out of it), so any divergence is attributable to
    the optimized query paths alone.
    """

    def __init__(self, pool: ResourcePool) -> None:
        self.pool = pool

    def can_fit(self, job) -> bool:
        return all(
            (~self.pool._busy[name]).sum() >= amount
            for name, amount in job.requests.items()
            if amount > 0
        )

    def utilizations(self) -> np.ndarray:
        caps = np.array(
            [self.pool.config.capacity(n) for n in self.pool.config.names],
            dtype=float,
        )
        busy = np.array(
            [self.pool._busy[n].sum() for n in self.pool.config.names], dtype=float
        )
        return busy / caps

    def earliest_fit_time(self, job, now: float) -> float:
        t = now
        for name, amount in job.requests.items():
            if amount <= 0:
                continue
            busy = self.pool._busy[name]
            free_times = np.where(busy, self.pool._est_free[name], now)
            kth = np.partition(free_times, amount - 1)[amount - 1]
            t = max(t, float(kth))
        return t

    def free_units_at(self, name: str, when: float, now: float) -> int:
        busy = self.pool._busy[name]
        free_times = np.where(busy, self.pool._est_free[name], now)
        return int((free_times <= when).sum())


ops = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "release", "tick"]),
        st.integers(1, 8),            # nodes
        st.integers(0, 4),            # bb
        st.floats(1.0, 5000.0),       # walltime
        st.floats(0.0, 800.0),        # time advance / query offset
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(ops)
def test_optimized_pool_bit_identical_to_naive_reference(op_list):
    system = SystemConfig(
        resources=(ResourceSpec(NODE, 8), ResourceSpec(BURST_BUFFER, 4))
    )
    pool = ResourcePool(system)
    ref = NaiveReferencePool(pool)
    now = 0.0
    active = []
    next_id = 0
    for kind, nodes, bb, walltime, advance in op_list:
        now += advance
        if kind == "alloc":
            job = make_job(
                job_id=next_id, nodes=nodes, bb=bb,
                runtime=walltime, walltime=walltime,
            )
            next_id += 1
            assert pool.can_fit(job) == ref.can_fit(job)
            if pool.can_fit(job):
                pool.allocate(job, now)
                active.append(job)
        elif kind == "release" and active:
            pool.release(active.pop(nodes % len(active)))
        # Query cross-check after every operation — the sorted cache is
        # exercised in every dirty/clean state the sequence can reach.
        probe = make_job(job_id=99_999, nodes=nodes, bb=bb, runtime=1.0)
        assert pool.can_fit(probe) == ref.can_fit(probe)
        got = pool.earliest_fit_time(probe, now)
        want = ref.earliest_fit_time(probe, now)
        assert got == want, f"earliest_fit_time {got!r} != naive {want!r}"
        for name in system.names:
            when = now + advance
            assert pool.free_units_at(name, when, now) == ref.free_units_at(
                name, when, now
            )
            # Also probe *before* now (free units still count as free).
            assert pool.free_units_at(name, now - 1.0, now) == ref.free_units_at(
                name, now - 1.0, now
            )
        np.testing.assert_array_equal(pool.utilizations(), ref.utilizations())
        np.testing.assert_array_equal(
            pool.free_vector(),
            [pool.free_units(n) for n in system.names],
        )


@settings(max_examples=30, deadline=None)
@given(ops)
def test_repeated_queries_hit_the_sorted_cache_consistently(op_list):
    """Back-to-back identical queries (cache rebuild, then cache hit)
    must agree with each other and with the naive answer."""
    system = SystemConfig(resources=(ResourceSpec(NODE, 8),))
    pool = ResourcePool(system)
    ref = NaiveReferencePool(pool)
    now = 0.0
    for i, (kind, nodes, _, walltime, advance) in enumerate(op_list):
        now += advance
        job = make_job(job_id=i, nodes=nodes, runtime=walltime, walltime=walltime, bb=0)
        job.requests.pop(BURST_BUFFER, None)
        if kind == "alloc" and pool.can_fit(job):
            pool.allocate(job, now)
        probe = make_job(job_id=10_000 + i, nodes=nodes, bb=0, runtime=1.0)
        probe.requests.pop(BURST_BUFFER, None)
        first = pool.earliest_fit_time(probe, now)
        second = pool.earliest_fit_time(probe, now)  # cached path
        assert first == second == ref.earliest_fit_time(probe, now)
