"""Golden-metrics tier-1 test: exact FCFS numbers on the tiny trace.

Any simulator "fast path" refactor — pool accounting, event ordering,
metric aggregation — that changes replay *semantics* (rather than just
speed) shifts at least one of these values and fails loudly here. The
numbers are exact floats captured from the reference implementation, and
the per-job schedule is pinned alongside the aggregates so a failure
points at the first divergent scheduling decision, not just a summary
statistic.
"""

from __future__ import annotations

from repro.sched.fcfs import FCFSScheduler
from repro.sim.simulator import Simulator

#: (job_id, start_time, end_time) of every job, in submission order.
GOLDEN_SCHEDULE = [
    (1, 0.0, 200.0),
    (2, 50.0, 280.0),
    (3, 100.0, 360.0),
    (4, 150.0, 350.0),
    (5, 200.0, 430.0),
    (6, 280.0, 540.0),
    (7, 350.0, 550.0),
    (8, 360.0, 590.0),
    (9, 430.0, 690.0),
    (10, 540.0, 740.0),
]

GOLDEN_METRICS = {
    "utilization": {
        "node": 0.6815878378378378,
        "burst_buffer": 0.38006756756756754,
    },
    "avg_wait": 21.0,
    "avg_slowdown": 1.0974247491638796,
    "max_wait": 90.0,
    "p95_slowdown": 1.3599999999999999,
    "makespan": 740.0,
    "n_jobs": 10,
    "avg_power_units": 0.0,
}

GOLDEN_N_SCHEDULING_INSTANCES = 18


def _run(tiny_system, tiny_trace):
    return Simulator(tiny_system, FCFSScheduler(window_size=5)).run(tiny_trace)


class TestGoldenFCFS:
    def test_exact_metric_values(self, tiny_system, tiny_trace):
        result = _run(tiny_system, tiny_trace)
        assert result.metrics.full_dict() == GOLDEN_METRICS

    def test_exact_schedule(self, tiny_system, tiny_trace):
        result = _run(tiny_system, tiny_trace)
        schedule = [(j.job_id, j.start_time, j.end_time) for j in result.jobs]
        assert schedule == GOLDEN_SCHEDULE

    def test_scheduling_instance_count(self, tiny_system, tiny_trace):
        result = _run(tiny_system, tiny_trace)
        assert result.n_scheduling_instances == GOLDEN_N_SCHEDULING_INSTANCES
        assert result.makespan == GOLDEN_METRICS["makespan"]

    def test_replay_is_stable(self, tiny_system, tiny_trace):
        """Two replays of the same trace agree exactly (no hidden state)."""
        first = _run(tiny_system, tiny_trace).metrics.full_dict()
        second = _run(tiny_system, tiny_trace).metrics.full_dict()
        assert first == second == GOLDEN_METRICS
