"""Tests for synthetic Darshan record generation and BB extraction."""

import numpy as np
import pytest

from repro.workload.darshan import (
    DarshanRecord,
    extract_bb_requests,
    generate_darshan_records,
)
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace
from tests.conftest import make_job


@pytest.fixture(scope="module")
def big_trace():
    return generate_theta_trace(ThetaTraceConfig(n_jobs=4000), seed=11)


class TestRecordGeneration:
    def test_record_validation(self):
        with pytest.raises(ValueError):
            DarshanRecord(job_id=1, bytes_moved_gb=-1.0)

    def test_fraction_with_records(self, big_trace):
        records = generate_darshan_records(big_trace, seed=0)
        frac = len(records) / len(big_trace)
        assert 0.35 < frac < 0.45  # paper: 40%

    def test_fraction_over_1gb(self, big_trace):
        """Paper §IV-A: 17.18% of all jobs move more than 1 GB."""
        records = generate_darshan_records(big_trace, seed=0)
        over = sum(1 for r in records if r.bytes_moved_gb > 1.0)
        frac = over / len(big_trace)
        assert 0.12 < frac < 0.23

    def test_volume_cap(self, big_trace):
        records = generate_darshan_records(big_trace, max_volume_gb=100.0, seed=0)
        assert all(r.bytes_moved_gb <= 100.0 for r in records)

    def test_empty_jobs(self):
        assert generate_darshan_records([], seed=0) == []

    def test_invalid_probabilities(self, big_trace):
        with pytest.raises(ValueError):
            generate_darshan_records(big_trace, p_has_record=1.5)
        with pytest.raises(ValueError):
            generate_darshan_records(big_trace, p_has_record=0.1, p_over_1gb=0.2)

    def test_node_scaling_effect(self):
        """With node scaling on, volume correlates with node count."""
        jobs = [make_job(job_id=i, nodes=1 if i < 500 else 64) for i in range(1000)]
        records = generate_darshan_records(jobs, io_scales_with_nodes=True, seed=1)
        small = [r.bytes_moved_gb for r in records if r.job_id < 500]
        large = [r.bytes_moved_gb for r in records if r.job_id >= 500]
        assert np.median(large) > np.median(small)


class TestExtraction:
    def test_units_ceiling(self):
        jobs = [make_job(job_id=1)]
        records = [DarshanRecord(job_id=1, bytes_moved_gb=1500.0)]
        out = extract_bb_requests(jobs, records, bb_unit_gb=1024.0)
        assert out[0].request("burst_buffer") == 2  # ceil(1500/1024)

    def test_below_threshold_gets_zero(self):
        jobs = [make_job(job_id=1)]
        records = [DarshanRecord(job_id=1, bytes_moved_gb=0.5)]
        out = extract_bb_requests(jobs, records, min_volume_gb=1.0)
        assert out[0].request("burst_buffer") == 0

    def test_no_record_gets_zero(self):
        out = extract_bb_requests([make_job(job_id=7)], [])
        assert out[0].request("burst_buffer") == 0

    def test_max_units_cap(self):
        jobs = [make_job(job_id=1)]
        records = [DarshanRecord(job_id=1, bytes_moved_gb=1e6)]
        out = extract_bb_requests(jobs, records, bb_unit_gb=1024.0, max_units=10)
        assert out[0].request("burst_buffer") == 10

    def test_inputs_not_mutated(self):
        job = make_job(job_id=1)
        extract_bb_requests([job], [DarshanRecord(job_id=1, bytes_moved_gb=5000.0)])
        assert "burst_buffer" not in job.requests or job.requests["burst_buffer"] == 0

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            extract_bb_requests([], [], bb_unit_gb=0.0)
