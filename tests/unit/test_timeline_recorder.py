"""TimelineRecorder edge cases: empty, single-sample and zero-span series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.recorder import TimelineRecorder


class TestTimeWeightedMeanUtilization:
    def test_empty_series_yields_empty_vector(self):
        rec = TimelineRecorder()
        assert rec.time_weighted_mean_utilization().shape == (0,)

    def test_single_sample_returns_that_sample(self):
        rec = TimelineRecorder()
        rec.record_utilization(5.0, np.array([0.25, 0.75]))
        np.testing.assert_allclose(
            rec.time_weighted_mean_utilization(), [0.25, 0.75]
        )

    def test_single_sample_result_is_a_copy(self):
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([0.5, 0.5]))
        out = rec.time_weighted_mean_utilization()
        out[:] = 99.0
        np.testing.assert_allclose(
            rec.time_weighted_mean_utilization(), [0.5, 0.5]
        )

    def test_zero_span_falls_back_to_plain_mean(self):
        """Several samples at one instant (all events at t=0) have no
        elapsed time to weight by."""
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([0.0, 1.0]))
        rec.record_utilization(0.0, np.array([1.0, 0.0]))
        np.testing.assert_allclose(
            rec.time_weighted_mean_utilization(), [0.5, 0.5]
        )

    def test_step_function_integral_is_exact(self):
        """Values hold until the next sample; the last sample has no
        duration — the defining property of the step-function integral."""
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([1.0]))
        rec.record_utilization(3.0, np.array([0.0]))
        rec.record_utilization(4.0, np.array([0.5]))
        # 1.0 for 3s + 0.0 for 1s over a 4s span.
        np.testing.assert_allclose(rec.time_weighted_mean_utilization(), [0.75])

    def test_final_sample_value_does_not_leak_into_integral(self):
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([0.2]))
        rec.record_utilization(10.0, np.array([123.0]))
        np.testing.assert_allclose(rec.time_weighted_mean_utilization(), [0.2])


class TestSeriesRetrieval:
    def test_empty_series_shapes(self):
        rec = TimelineRecorder()
        times, values = rec.utilization_series
        assert times.shape == (0,) and values.shape == (0, 0)
        times, values = rec.goal_series
        assert times.shape == (0,) and values.shape == (0, 0)

    def test_goal_window_on_empty_series(self):
        rec = TimelineRecorder()
        times, values = rec.goal_window(0.0, 100.0)
        assert times.size == 0 and values.size == 0

    def test_goal_window_single_sample_inclusive_bounds(self):
        rec = TimelineRecorder()
        rec.record_goal(5.0, np.array([0.6, 0.4]))
        times, values = rec.goal_window(5.0, 5.0)
        assert times.tolist() == [5.0]
        np.testing.assert_allclose(values, [[0.6, 0.4]])

    def test_goal_window_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="t_end"):
            TimelineRecorder().goal_window(10.0, 0.0)

    def test_recorded_values_are_copied(self):
        rec = TimelineRecorder()
        sample = np.array([0.1, 0.9])
        rec.record_utilization(0.0, sample)
        sample[:] = -1.0
        _, values = rec.utilization_series
        np.testing.assert_allclose(values[0], [0.1, 0.9])
