"""TimelineRecorder edge cases: empty, single-sample and zero-span series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.recorder import TimelineRecorder


class TestTimeWeightedMeanUtilization:
    def test_empty_series_yields_empty_vector(self):
        rec = TimelineRecorder()
        assert rec.time_weighted_mean_utilization().shape == (0,)

    def test_single_sample_returns_that_sample(self):
        rec = TimelineRecorder()
        rec.record_utilization(5.0, np.array([0.25, 0.75]))
        np.testing.assert_allclose(
            rec.time_weighted_mean_utilization(), [0.25, 0.75]
        )

    def test_single_sample_result_is_a_copy(self):
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([0.5, 0.5]))
        out = rec.time_weighted_mean_utilization()
        out[:] = 99.0
        np.testing.assert_allclose(
            rec.time_weighted_mean_utilization(), [0.5, 0.5]
        )

    def test_zero_span_falls_back_to_plain_mean(self):
        """Several samples at one instant (all events at t=0) have no
        elapsed time to weight by."""
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([0.0, 1.0]))
        rec.record_utilization(0.0, np.array([1.0, 0.0]))
        np.testing.assert_allclose(
            rec.time_weighted_mean_utilization(), [0.5, 0.5]
        )

    def test_step_function_integral_is_exact(self):
        """Values hold until the next sample; the last sample has no
        duration — the defining property of the step-function integral."""
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([1.0]))
        rec.record_utilization(3.0, np.array([0.0]))
        rec.record_utilization(4.0, np.array([0.5]))
        # 1.0 for 3s + 0.0 for 1s over a 4s span.
        np.testing.assert_allclose(rec.time_weighted_mean_utilization(), [0.75])

    def test_final_sample_value_does_not_leak_into_integral(self):
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([0.2]))
        rec.record_utilization(10.0, np.array([123.0]))
        np.testing.assert_allclose(rec.time_weighted_mean_utilization(), [0.2])


class TestSeriesRetrieval:
    def test_empty_series_shapes(self):
        rec = TimelineRecorder()
        times, values = rec.utilization_series
        assert times.shape == (0,) and values.shape == (0, 0)
        times, values = rec.goal_series
        assert times.shape == (0,) and values.shape == (0, 0)

    def test_goal_window_on_empty_series(self):
        rec = TimelineRecorder()
        times, values = rec.goal_window(0.0, 100.0)
        assert times.size == 0 and values.size == 0

    def test_goal_window_single_sample_inclusive_bounds(self):
        rec = TimelineRecorder()
        rec.record_goal(5.0, np.array([0.6, 0.4]))
        times, values = rec.goal_window(5.0, 5.0)
        assert times.tolist() == [5.0]
        np.testing.assert_allclose(values, [[0.6, 0.4]])

    def test_goal_window_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="t_end"):
            TimelineRecorder().goal_window(10.0, 0.0)

    def test_recorded_values_are_copied(self):
        rec = TimelineRecorder()
        sample = np.array([0.1, 0.9])
        rec.record_utilization(0.0, sample)
        sample[:] = -1.0
        _, values = rec.utilization_series
        np.testing.assert_allclose(values[0], [0.1, 0.9])


class TestCarriedResourceWidth:
    """``n_resources`` keeps empty series shaped like non-empty ones."""

    def test_empty_series_keep_declared_width(self):
        rec = TimelineRecorder(n_resources=3)
        times, values = rec.utilization_series
        assert times.shape == (0,) and values.shape == (0, 3)
        times, values = rec.goal_series
        assert times.shape == (0,) and values.shape == (0, 3)

    def test_empty_mean_utilization_keeps_declared_width(self):
        rec = TimelineRecorder(n_resources=2)
        out = rec.time_weighted_mean_utilization()
        np.testing.assert_array_equal(out, np.zeros(2))

    def test_width_inferred_from_first_sample(self):
        rec = TimelineRecorder()
        assert rec.n_resources is None
        rec.record_goal(0.0, np.array([0.3, 0.7]))
        assert rec.n_resources == 2
        # Still-empty sibling series now answers with the carried width.
        assert rec.utilization_series[1].shape == (0, 2)

    def test_unrecorded_simulation_recorder_keeps_width(self, tiny_system):
        """The plotting path off a ``record_timeline=False`` run: the
        recorder saw no samples, but its series are system-shaped."""
        from repro.sched.fcfs import FCFSScheduler
        from repro.sim.simulator import Simulator
        from tests.conftest import make_job

        sim = Simulator(tiny_system, FCFSScheduler(window_size=4),
                        record_timeline=False)
        result = sim.run([make_job(job_id=1, nodes=2, runtime=10.0)])
        times, values = result.recorder.utilization_series
        assert times.shape == (0,)
        assert values.shape == (0, tiny_system.n_resources)
        assert result.recorder.time_weighted_mean_utilization().shape == (
            tiny_system.n_resources,
        )


class TestSnapshotRestore:
    def test_round_trip_preserves_samples_and_width(self):
        rec = TimelineRecorder(n_resources=2)
        rec.record_utilization(0.0, np.array([0.1, 0.9]))
        rec.record_goal(1.0, np.array([0.4, 0.6]))
        snap = rec.snapshot()
        rec.record_utilization(2.0, np.array([1.0, 1.0]))
        rec.restore(snap)
        times, values = rec.utilization_series
        assert times.tolist() == [0.0]
        np.testing.assert_array_equal(values, [[0.1, 0.9]])
        np.testing.assert_array_equal(rec.goal_series[1], [[0.4, 0.6]])
        assert rec.n_resources == 2

    def test_snapshot_is_isolated_from_later_mutation(self):
        rec = TimelineRecorder(n_resources=1)
        sample = np.array([0.5])
        rec.record_utilization(0.0, sample)
        snap = rec.snapshot()
        snap["util_values"][0][:] = 99.0
        np.testing.assert_array_equal(rec.utilization_series[1], [[0.5]])
