"""Unit tests for the stderr progress line and duration formatting."""

from __future__ import annotations

import io

from repro.obs.progress import ProgressLine, format_duration


class FakeTty(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestFormatDuration:
    def test_buckets(self):
        assert format_duration(0.0) == "0s"
        assert format_duration(47.4) == "47s"
        assert format_duration(192.0) == "3m12s"
        assert format_duration(2 * 3600 + 5 * 60) == "2h05m"
        assert format_duration(-3.0) == "0s"  # clamped


class TestProgressLine:
    def test_suppressed_off_tty(self):
        stream = io.StringIO()  # isatty() False
        line = ProgressLine(10, stream=stream)
        line.update(5, recalled=2)
        line.close()
        assert stream.getvalue() == ""

    def test_renders_on_tty(self):
        stream = FakeTty()
        line = ProgressLine(10, stream=stream, min_interval=0.0)
        line.update(4, recalled=1)
        line.close()
        out = stream.getvalue()
        assert "[4/10 cells]" in out
        assert "1 recalled" in out
        assert "elapsed" in out
        assert out.endswith("\n")

    def test_forced_enable_overrides_isatty(self):
        stream = io.StringIO()
        line = ProgressLine(3, enabled=True, stream=stream, min_interval=0.0)
        line.update(3)
        line.close()
        assert "[3/3 cells]" in stream.getvalue()

    def test_eta_appears_once_cells_execute(self):
        stream = FakeTty()
        line = ProgressLine(100, stream=stream, min_interval=0.0)
        line.update(1)  # executed (not recalled) cell starts the rate clock
        line.update(50)
        assert "eta" in stream.getvalue()
        line.close()
