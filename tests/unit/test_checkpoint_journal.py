"""Unit tests for checkpoint journal durability and torn-tail repair."""

from __future__ import annotations

import json

from repro.exp.records import TaskResult
from repro.exp.runner import ExperimentRunner
from repro.sim.metrics import MetricReport


def make_result(key: str) -> TaskResult:
    return TaskResult(
        key=key,
        method="heuristic",
        seed=7,
        workloads=("S1",),
        metrics={"S1": MetricReport(
            utilization={"node": 0.8, "burst_buffer": 0.3},
            avg_wait=12.5, avg_slowdown=1.5, max_wait=99.0,
            p95_slowdown=2.25, makespan=1000.0, n_jobs=20,
        )},
        wall_time=0.1,
    )


class TestTornFragmentRecovery:
    def _journal(self, tmp_path, keys, tail=""):
        path = tmp_path / "ckpt.jsonl"
        lines = [
            json.dumps(make_result(key).to_json_dict(), sort_keys=True)
            for key in keys
        ]
        path.write_text("".join(line + "\n" for line in lines) + tail)
        return path, lines

    def test_torn_final_line_is_dropped(self, tmp_path):
        path, _ = self._journal(tmp_path, ["a", "b"], tail='{"key": "c", "met')
        runner = ExperimentRunner(checkpoint_path=path)
        done = runner._load_checkpoint()
        assert set(done) == {"a", "b"}
        assert all(r.source == "checkpoint" for r in done.values())

    def test_journal_is_rewritten_without_the_fragment(self, tmp_path):
        path, lines = self._journal(tmp_path, ["a", "b"], tail='{"torn')
        ExperimentRunner(checkpoint_path=path)._load_checkpoint()
        # The rewrite keeps exactly the valid lines, newline-terminated,
        # so later appends extend a clean line instead of merging into
        # the fragment.
        assert path.read_text() == "".join(line + "\n" for line in lines)

    def test_rewrite_is_atomic_no_temp_left_behind(self, tmp_path):
        path, _ = self._journal(tmp_path, ["a"], tail='{"torn')
        ExperimentRunner(checkpoint_path=path)._load_checkpoint()
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.jsonl"]

    def test_clean_journal_is_not_rewritten(self, tmp_path):
        path, _ = self._journal(tmp_path, ["a", "b"])
        before = path.stat().st_mtime_ns
        done = ExperimentRunner(checkpoint_path=path)._load_checkpoint()
        assert set(done) == {"a", "b"}
        assert path.stat().st_mtime_ns == before

    def test_interior_torn_line_is_also_dropped(self, tmp_path):
        """Corruption anywhere — not just the tail — is repaired."""
        path, lines = self._journal(tmp_path, ["a"])
        good = json.dumps(make_result("b").to_json_dict(), sort_keys=True)
        path.write_text(lines[0] + "\n" + '{"key": "x", "bro\n' + good + "\n")
        done = ExperimentRunner(checkpoint_path=path)._load_checkpoint()
        assert set(done) == {"a", "b"}
        assert path.read_text() == lines[0] + "\n" + good + "\n"


class TestAppendDurability:
    def test_append_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "ckpt.jsonl"
        runner = ExperimentRunner(checkpoint_path=path)
        runner._append_checkpoint(make_result("a"))
        runner._append_checkpoint(make_result("b"))
        done = runner._load_checkpoint()
        assert set(done) == {"a", "b"}
        # Two fully-terminated JSON lines on disk.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["key"] in {"a", "b"} for line in lines)

    def test_append_fsyncs_the_fd(self, tmp_path, monkeypatch):
        import os as os_mod

        import repro.exp.runner as runner_mod

        synced = []
        real_fsync = os_mod.fsync
        monkeypatch.setattr(
            runner_mod.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        path = tmp_path / "ckpt.jsonl"
        runner = ExperimentRunner(checkpoint_path=path)
        runner._append_checkpoint(make_result("a"))
        # First create fsyncs the file *and* its directory…
        assert len(synced) == 2
        runner._append_checkpoint(make_result("b"))
        # …later appends only the file.
        assert len(synced) == 3


class TestJournalInteriorCorruptionQuarantine:
    """Interior corruption in queue journal shards is *quarantined*.

    The runner's checkpoint journal above may silently repair torn
    lines — it is single-writer, and a torn line there can only be its
    own crash. The distributed journal shards cannot: an interior bad
    line means the storage layer mangled a record that was once whole,
    so the merge moves it to ``quarantine/`` with provenance instead of
    absorbing it, and the surviving records still merge first-wins.
    """

    def _shard_queue(self, tmp_path, keys, worker="w0"):
        from repro.dist.queue import WorkQueue

        queue = WorkQueue(tmp_path / "q")
        for key in keys:
            result = make_result(key)
            result.worker_id = worker
            queue.publish(worker, result)
        return queue

    def test_bad_interior_line_lands_in_quarantine_with_provenance(
        self, tmp_path
    ):
        queue = self._shard_queue(tmp_path, ["a", "b", "c"])
        shard = queue.shard_path("w0")
        lines = shard.read_text().splitlines()
        lines[1] = lines[1][:40] + "##corrupted##" + lines[1][40:]
        shard.write_text("\n".join(lines) + "\n")

        merged = queue.merged_results()
        assert set(merged) == {"a", "c"}  # survivors still merge
        (record,) = queue.quarantined()
        assert record["origin"] == shard.name
        assert record["line_no"] == 2
        assert "checksum" in record["reason"]
        assert "##corrupted##" in record["raw"]
        assert record["detected_by"] and record["detected_at"] > 0

    def test_first_wins_merge_survives_corruption_in_one_shard(self, tmp_path):
        """A duplicate publish in a later shard backfills the
        quarantined copy, so the grid still completes losslessly."""
        queue = self._shard_queue(tmp_path, ["a", "b"], worker="w0")
        from repro.dist.queue import WorkQueue  # noqa: F401  (same queue)

        duplicate = make_result("b")
        duplicate.worker_id = "w1"
        queue.publish("w1", duplicate)  # straggler duplicate
        shard0 = queue.shard_path("w0")
        lines = shard0.read_text().splitlines()
        lines[1] = lines[1].replace('"key"', '"kex"')
        shard0.write_text("\n".join(lines) + "\n")

        merged = queue.merged_results()
        assert set(merged) == {"a", "b"}
        assert merged["b"].worker_id == "w1"  # the intact copy won
        assert queue.quarantine_count() == 1

    def test_clean_shards_quarantine_nothing(self, tmp_path):
        queue = self._shard_queue(tmp_path, ["a", "b"])
        assert set(queue.merged_results()) == {"a", "b"}
        assert queue.quarantine_count() == 0
        assert queue.status().quarantined == 0
