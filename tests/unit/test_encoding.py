"""Tests for the §III-A vector state encoding."""

import numpy as np
import pytest

from repro.cluster.resources import BURST_BUFFER, NODE, ResourcePool, SystemConfig
from repro.core.encoding import StateEncoder
from tests.conftest import make_job


@pytest.fixture
def encoder(tiny_system):
    return StateEncoder(tiny_system, window_size=3, time_scale=100.0, time_clip=8.0)


class TestDimensions:
    def test_state_dim_formula(self, tiny_system):
        enc = StateEncoder(tiny_system, window_size=3)
        # (2R+2)*W + 2*(N1+N2) = 6*3 + 2*(16+8) = 66 (augmented layout)
        assert enc.state_dim == 66
        assert enc.job_dim == 6

    def test_paper_layout_dim(self, tiny_system):
        enc = StateEncoder(tiny_system, window_size=3, paper_layout=True)
        # (R+2)*W + 2*(N1+N2) = 4*3 + 2*(16+8) = 60
        assert enc.state_dim == 60
        assert enc.job_dim == 4

    def test_paper_theta_dimension(self):
        """§IV-C: W=10, 4392 nodes, 1290 BB units → input size 11404.

        (The paper quotes 11410 with its window encoding of 4W+2N1+2N2
        = 40 + 8784 + 2580 = 11404; the formula matches ours.)
        """
        enc = StateEncoder(SystemConfig.theta(), window_size=10, paper_layout=True)
        assert enc.state_dim == 4 * 10 + 2 * 4392 + 2 * 1290

    def test_invalid_params(self, tiny_system):
        with pytest.raises(ValueError):
            StateEncoder(tiny_system, window_size=0)
        with pytest.raises(ValueError):
            StateEncoder(tiny_system, time_scale=0.0)


class TestJobBlock:
    def test_request_fractions(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(job_id=1, nodes=8, bb=2, runtime=50.0, walltime=50.0)
        state = encoder.encode([job], pool, now=0.0)
        assert state[0] == pytest.approx(8 / 16)
        assert state[1] == pytest.approx(2 / 8)
        assert state[2] == pytest.approx(0.5)  # walltime / time_scale
        assert state[3] == 0.0  # queued time

    def test_queued_time(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(job_id=1, submit=0.0, nodes=1, runtime=50.0)
        state = encoder.encode([job], pool, now=200.0)
        assert state[3] == pytest.approx(2.0)

    def test_time_clipping(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(job_id=1, nodes=1, runtime=1e9, walltime=1e9)
        state = encoder.encode([job], pool, now=0.0)
        assert state[2] == encoder.time_clip

    def test_empty_slots_zero_padded(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        job = make_job(job_id=1, nodes=1, runtime=50.0)
        state = encoder.encode([job], pool, now=0.0)
        per = encoder.job_dim
        assert np.all(state[per : 3 * per] == 0.0)  # slots 2 and 3

    def test_shortfall_features(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        pool.allocate(make_job(job_id=9, nodes=12, runtime=100.0), now=0.0)
        fitting = make_job(job_id=1, nodes=4, bb=2, runtime=50.0)
        blocked = make_job(job_id=2, nodes=10, bb=2, runtime=50.0)
        state = encoder.encode([fitting, blocked], pool, now=0.0)
        per = encoder.job_dim
        # fitting job: zero shortfall on both resources
        assert np.all(state[4:6] == 0.0)
        # blocked job: node shortfall (10 - 4 free) / 16
        assert state[per + 4] == pytest.approx(6 / 16)
        assert state[per + 5] == 0.0

    def test_window_overflow_rejected(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        jobs = [make_job(job_id=i, nodes=1) for i in range(5)]
        with pytest.raises(ValueError, match="window"):
            encoder.encode(jobs, pool, now=0.0)


class TestResourceBlock:
    def test_all_free(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        state = encoder.encode([], pool, now=0.0)
        offset = encoder.job_dim * 3
        np.testing.assert_array_equal(state[offset : offset + 16], 1.0)  # node avail
        np.testing.assert_array_equal(state[offset + 16 : offset + 32], 0.0)  # ttf

    def test_busy_units_encoded(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        running = make_job(job_id=9, nodes=4, runtime=100.0, walltime=300.0)
        pool.allocate(running, now=0.0)
        state = encoder.encode([], pool, now=100.0)
        offset = encoder.job_dim * 3
        avail = state[offset : offset + 16]
        ttf = state[offset + 16 : offset + 32]
        assert avail.sum() == 12
        # est free at 300, now=100 → 200s → /time_scale(100) = 2.0
        np.testing.assert_allclose(ttf[avail == 0], 2.0)

    def test_fixed_size_regardless_of_window_population(self, encoder, tiny_system):
        pool = ResourcePool(tiny_system)
        a = encoder.encode([], pool, now=0.0)
        b = encoder.encode([make_job(job_id=1, nodes=1)], pool, now=0.0)
        assert a.shape == b.shape == (encoder.state_dim,)


class TestMask:
    def test_window_mask(self, encoder):
        jobs = [make_job(job_id=1, nodes=1), make_job(job_id=2, nodes=1)]
        assert encoder.window_mask(jobs).tolist() == [True, True, False]
        assert encoder.window_mask([]).tolist() == [False, False, False]
