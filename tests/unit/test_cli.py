"""Tests for the ``repro`` command-line entry point."""

import json

import pytest

from repro.api.cli import main

TINY = {
    "name": "cli-tiny",
    "methods": ["heuristic"],
    "workloads": ["S1"],
    "system": {"name": "mini_theta", "nodes": 32, "bb_units": 16},
    "seed": 3,
    "train": False,
    "config": {"n_jobs": 20, "window_size": 5},
}


@pytest.fixture
def tiny_file(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(TINY))
    return str(path)


class TestList:
    def test_text(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("Schedulers:", "Workloads:", "Systems:"):
            assert section in out
        assert "mrsch" in out and "S5" in out and "mini_theta" in out
        assert "trainable" in out and "case-study" in out

    def test_json(self, capsys):
        assert main(["list", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        names = [e["name"] for e in snapshot["schedulers"]]
        assert "heuristic" in names
        assert any(w["case_study"] for w in snapshot["workloads"])

    def test_handles_plugin_without_description(self, capsys):
        from repro.api import SCHEDULERS, register_scheduler

        register_scheduler("toy_undescribed")(lambda system, **kw: None)
        try:
            assert main(["list"]) == 0
            assert "toy_undescribed" in capsys.readouterr().out
        finally:
            SCHEDULERS.unregister("toy_undescribed")


class TestRun:
    def test_runs_scenario_file(self, tiny_file, capsys):
        assert main(["run", tiny_file]) == 0
        out = capsys.readouterr().out
        assert "cli-tiny" in out and "node_util" in out and "heuristic" in out

    def test_json_output(self, tiny_file, capsys):
        assert main(["run", tiny_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["name"] == "cli-tiny"
        assert "S1" in payload["reports"]
        assert "utilization" in payload["reports"]["S1"]["heuristic"]

    def test_seed_override_changes_metrics(self, tiny_file, capsys):
        main(["run", tiny_file, "--json"])
        base = json.loads(capsys.readouterr().out)
        main(["run", tiny_file, "--json", "--seed", "99"])
        overridden = json.loads(capsys.readouterr().out)
        assert base["reports"] != overridden["reports"]
        assert base["scenario_hash"] != overridden["scenario_hash"]

    def test_seed_override_replaces_explicit_seeds(self, tmp_path, capsys):
        """--seed must re-seed even a scenario that pins a seeds list."""
        path = tmp_path / "seeded.json"
        path.write_text(json.dumps({**TINY, "seeds": [5, 6]}))
        assert main(["run", str(path), "--json", "--seed", "99"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["seed"] == 99
        assert "seeds" not in payload["scenario"]
        assert list(payload["reports"]["S1"]) == ["heuristic"]  # one cell

    def test_missing_file_is_an_error(self, capsys):
        assert main(["run", "does/not/exist.json"]) == 1
        assert "scenario file not found" in capsys.readouterr().err

    def test_invalid_scenario_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({**TINY, "methods": ["slurm"]}))
        assert main(["run", str(path)]) == 1
        err = capsys.readouterr().err
        assert "unknown scheduler 'slurm'" in err

    def test_checkpoint_roundtrip(self, tiny_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.jsonl"
        assert main(["run", tiny_file, "--checkpoint", str(ckpt), "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert list(first["sources"].values()) == ["run"]
        assert main(["run", tiny_file, "--checkpoint", str(ckpt), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert list(second["sources"].values()) == ["checkpoint"]
        assert first["reports"] == second["reports"]


class TestCompare:
    def test_inline_grid(self, capsys):
        code = main(
            ["compare", "--methods", "heuristic", "--workloads", "S1,S3",
             "--nodes", "32", "--bb-units", "16", "--n-jobs", "20",
             "--window-size", "5", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compare — S1" in out and "compare — S3" in out

    def test_unknown_method_is_an_error(self, capsys):
        code = main(["compare", "--methods", "slurm", "--workloads", "S1"])
        assert code == 1
        assert "unknown scheduler" in capsys.readouterr().err

    def test_json_with_seeds(self, capsys):
        code = main(
            ["compare", "--methods", "heuristic", "--workloads", "S1",
             "--seeds", "5", "6", "--nodes", "32", "--bb-units", "16",
             "--n-jobs", "20", "--window-size", "5", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["S1"]) == {"heuristic@5", "heuristic@6"}


class TestBench:
    def test_list_benches(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "Hot-path benchmarks:" in out
        assert "mrsch_theta_decision" in out and "fcfs_replay" in out
        assert "smoke:" in out and "full:" in out

    def test_list_benches_json(self, capsys):
        assert main(["bench", "--list", "--json"]) == 0
        benches = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in benches}
        assert "mrsch_theta_decision" in names
        theta = next(b for b in benches if b["name"] == "mrsch_theta_decision")
        assert theta["sizes"]["full"]["nodes"] == 4392

    def test_suite_alias_and_only(self, capsys):
        code = main(
            ["bench", "--suite", "smoke", "--only", "pool_accounting",
             "--label", "t", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entry"]["scale"] == "smoke"
        assert set(payload["entry"]["results"]) == {"pool_accounting"}

    def test_only_with_append_is_refused(self, tmp_path, capsys):
        """A partial entry must never become the scale's guard baseline."""
        out_file = tmp_path / "traj.json"
        code = main(
            ["bench", "--only", "pool_accounting", "--append",
             "--out", str(out_file)]
        )
        assert code == 1
        assert "cannot be combined with --only" in capsys.readouterr().err
        assert not out_file.exists()

    def test_unknown_only_is_an_error(self, capsys):
        assert main(["bench", "--only", "nope"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_check_with_no_overlap_is_an_error(self, tmp_path, capsys):
        """--check must refuse a vacuous guard (zero compared benchmarks)."""
        from repro.perf.hotpath import BenchResult
        from repro.perf.trajectory import append_entry, make_entry

        out_file = tmp_path / "traj.json"
        baseline = make_entry(
            "old",
            {"fcfs_replay": BenchResult("fcfs_replay", wall_s=1.0, n_units=10)},
            calibration_s=0.1,
            scale="smoke",
        )
        append_entry(baseline, out_file)
        code = main(
            ["bench", "--scale", "smoke", "--only", "pool_accounting",
             "--check", "--out", str(out_file)]
        )
        assert code == 1
        assert "compared no benchmarks" in capsys.readouterr().err


class TestWorkQueueCommands:
    def _enqueue(self, tmp_path):
        from repro.dist import WorkQueue
        from repro.exp import grid_tasks
        from repro.experiments.harness import ExperimentConfig

        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        tasks = grid_tasks(
            ["heuristic"],
            ["S1"],
            ExperimentConfig(nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3),
            n_seeds=2,
        )
        queue.enqueue(tasks)
        return queue

    def test_work_drains_queue(self, tmp_path, capsys):
        queue = self._enqueue(tmp_path)
        code = main(
            ["work", "--queue", str(queue.root), "--worker-id", "cli-w0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worker cli-w0: 2 cell(s) executed" in out
        assert queue.status().done == 2

    def test_work_json_report(self, tmp_path, capsys):
        queue = self._enqueue(tmp_path)
        code = main(
            ["work", "--queue", str(queue.root), "--json", "--max-cells", "1"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["executed"]) == 1
        assert report["failed"] == []

    def test_work_missing_queue_is_an_error(self, tmp_path, capsys):
        assert main(["work", "--queue", str(tmp_path / "nope")]) == 1
        assert "work queue not found" in capsys.readouterr().err

    def test_queue_status_text_and_json(self, tmp_path, capsys):
        queue = self._enqueue(tmp_path)
        assert main(["queue-status", "--queue", str(queue.root)]) == 0
        assert "cells: 0/2 done" in capsys.readouterr().out
        main(["work", "--queue", str(queue.root), "--worker-id", "cli-w0"])
        capsys.readouterr()
        assert main(["queue-status", "--queue", str(queue.root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == 2 and payload["pending"] == 0
        assert payload["workers"][0]["worker_id"] == "cli-w0"

    def test_run_through_queue_dispatch(self, tiny_file, tmp_path, capsys):
        code = main(
            ["run", tiny_file, "--queue", str(tmp_path / "q"),
             "--workers", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "utilization" in payload["reports"]["S1"]["heuristic"]

    def test_work_faults_file_is_loaded(self, tmp_path, capsys):
        """A scripted fault plan file parses; bad plans are an error."""
        queue = self._enqueue(tmp_path)
        bad = tmp_path / "plan.json"
        bad.write_text('{"explode": true}')
        assert main(["work", "--queue", str(queue.root),
                     "--faults", str(bad)]) == 1
        assert "unknown fault plan" in capsys.readouterr().err
