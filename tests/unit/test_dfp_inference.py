"""Tests for the buffer-reused DFP inference paths and replay store.

Contracts pinned here:

* the workspace-backed ``forward_scores``/``forward_infer`` are
  **bit-identical** to the allocating layer-by-layer computation in
  float64 (buffer reuse must never change a score);
* returned score arrays are safe to hold across calls (no aliasing of
  internal buffers);
* the opt-in float32 mode stays within ~1e-5 relative of float64 and is
  fully reversible;
* parameter updates invalidate cast-parameter caches;
* :class:`StratifiedReplay` reproduces ``deque(maxlen)`` semantics and
  the exact stratified draws of the seed implementation.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfp import DFPAgent, DFPConfig, DFPNetwork, Experience, StratifiedReplay


def small_config(stream: str = "shared") -> DFPConfig:
    return DFPConfig(
        state_dim=60,
        n_measurements=2,
        n_actions=10,
        action_stream=stream,
        slot_dim=4 if stream == "shared" else None,
    )


def reference_scores(net: DFPNetwork, state, meas, goal, weights):
    """The seed-era allocating computation of ``forward_scores``."""
    c = net.config
    s = net.state_net.forward(state)
    m = net.meas_net.forward(meas)
    g = net.goal_net.forward(goal)
    joint = np.concatenate([s, m, g], axis=1)
    batch = joint.shape[0]
    exp_h = joint
    for layer in net.expectation_stream.layers[:-1]:
        exp_h = layer.forward(exp_h)
    el = net.expectation_stream.layers[-1]
    expectation = exp_h @ (el.params["W"] @ weights) + (el.params["b"] @ weights)
    al = net.action_stream.layers[-1]
    if c.action_stream == "shared":
        slots = state[:, : c.n_actions * c.slot_dim].reshape(
            batch, c.n_actions, c.slot_dim
        )
        head_in = np.concatenate(
            [np.repeat(joint[:, None, :], c.n_actions, axis=1), slots], axis=2
        ).reshape(batch * c.n_actions, -1)
        act_h = head_in
        for layer in net.action_stream.layers[:-1]:
            act_h = layer.forward(act_h)
        actions = (
            act_h @ (al.params["W"] @ weights) + al.params["b"] @ weights
        ).reshape(batch, c.n_actions)
    else:
        act_h = joint
        for layer in net.action_stream.layers[:-1]:
            act_h = layer.forward(act_h)
        w_fold = al.params["W"].reshape(-1, c.n_actions, c.pred_dim) @ weights
        b_fold = al.params["b"].reshape(c.n_actions, c.pred_dim) @ weights
        actions = act_h @ w_fold + b_fold
    actions = actions - actions.mean(axis=1, keepdims=True)
    return expectation[:, None] + actions


@pytest.fixture(params=["shared", "dense"])
def net_and_inputs(request):
    c = small_config(request.param)
    net = DFPNetwork(c, rng=1)
    rng = np.random.default_rng(0)
    state = rng.normal(size=(3, c.state_dim))
    meas = rng.uniform(size=(3, c.n_measurements))
    goal = rng.uniform(size=(3, c.n_measurements))
    w = np.asarray(c.temporal_weights)
    weights = (w[:, None] * goal[0][None, :]).reshape(c.pred_dim)
    return net, state, meas, goal, weights


class TestWorkspaceInference:
    def test_forward_scores_bit_identical_to_reference(self, net_and_inputs):
        net, state, meas, goal, weights = net_and_inputs
        want = reference_scores(net, state, meas, goal, weights)
        got = net.forward_scores(state, meas, goal, weights)
        np.testing.assert_array_equal(got, want)

    def test_buffer_reuse_is_stable_and_output_is_fresh(self, net_and_inputs):
        net, state, meas, goal, weights = net_and_inputs
        first = net.forward_scores(state, meas, goal, weights)
        kept = first.copy()
        second = net.forward_scores(state, meas, goal, weights)
        assert first is not second  # output arrays are never recycled
        np.testing.assert_array_equal(first, kept)  # ... nor clobbered
        np.testing.assert_array_equal(first, second)

    def test_forward_infer_matches_forward(self, net_and_inputs):
        net, state, meas, goal, _ = net_and_inputs
        np.testing.assert_array_equal(
            net.forward_infer(state, meas, goal),
            net.forward(state, meas, goal),
        )

    def test_varying_batch_sizes_reuse_safely(self, net_and_inputs):
        net, state, meas, goal, weights = net_and_inputs
        for batch in (1, 3, 2, 3, 1):
            got = net.forward_scores(
                state[:batch], meas[:batch], goal[:batch], weights
            )
            want = reference_scores(
                net, state[:batch], meas[:batch], goal[:batch], weights
            )
            np.testing.assert_array_equal(got, want)

    def test_float32_mode_close_and_reversible(self, net_and_inputs):
        net, state, meas, goal, weights = net_and_inputs
        base = net.forward_scores(state, meas, goal, weights)
        net.set_inference_dtype("float32")
        fast = net.forward_scores(state, meas, goal, weights)
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, base, rtol=1e-4, atol=1e-4)
        assert net.inference_dtype == np.float32
        net.set_inference_dtype(None)
        np.testing.assert_array_equal(
            net.forward_scores(state, meas, goal, weights), base
        )

    def test_param_updates_invalidate_cast_cache(self, net_and_inputs):
        net, state, meas, goal, weights = net_and_inputs
        net.set_inference_dtype("float32")
        before = net.forward_scores(state, meas, goal, weights).copy()
        for layer in net.layers:
            for value in layer.params.values():
                value *= 1.5
        net.notify_params_changed()
        after = net.forward_scores(state, meas, goal, weights)
        assert not np.array_equal(before, after)


class TestAgentInference:
    def test_action_scores_agree_between_paths(self):
        c = small_config()
        agent = DFPAgent(c, rng=7)
        rng = np.random.default_rng(1)
        state = rng.normal(size=c.state_dim)
        meas = rng.uniform(size=c.n_measurements)
        goal = rng.uniform(size=c.n_measurements)
        single = agent.action_scores(state, meas, goal)
        batched = agent.action_scores_batch(
            state[None, :], meas[None, :], goal[None, :]
        )[0]
        np.testing.assert_allclose(single, batched, atol=1e-12)

    def test_float32_agent_actions_match_float64(self):
        """Greedy actions survive the precision drop on clear margins."""
        c = small_config()
        agent = DFPAgent(c, rng=7)
        rng = np.random.default_rng(1)
        mask = np.ones(c.n_actions, dtype=bool)
        actions64 = []
        inputs = [
            (
                rng.normal(size=c.state_dim),
                rng.uniform(size=c.n_measurements),
                rng.uniform(0.2, 0.8, size=c.n_measurements),
            )
            for _ in range(20)
        ]
        for state, meas, goal in inputs:
            actions64.append(agent.act(state, meas, goal, mask))
        agent.set_inference_dtype("float32")
        actions32 = [agent.act(state, meas, goal, mask) for state, meas, goal in inputs]
        assert actions64 == actions32


# -- StratifiedReplay ---------------------------------------------------------


def make_exp(i: int, terminal: bool) -> Experience:
    return Experience(
        state=np.array([float(i)]),
        measurement=np.array([0.0]),
        goal=np.array([1.0]),
        action=i % 3,
        target=np.zeros(1),
        terminal=terminal,
    )


class TestStratifiedReplay:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            StratifiedReplay(0)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.booleans(), min_size=0, max_size=300),
           st.integers(1, 80))
    def test_matches_deque_semantics(self, terminals, capacity):
        replay = StratifiedReplay(capacity)
        reference: deque = deque(maxlen=capacity)
        for i, terminal in enumerate(terminals):
            e = make_exp(i, terminal)
            replay.append(e)
            reference.append(e)
            assert len(replay) == len(reference)
        assert list(replay) == list(reference)
        for i in range(len(reference)):
            assert replay[i] is reference[i]
        # The strata must equal filtering the reference buffer.
        term = [e for e in reference if e.terminal]
        reg = [e for e in reference if not e.terminal]
        assert [replay.terminal_at(i) for i in range(replay.n_terminal)] == term
        assert [replay.regular_at(i) for i in range(replay.n_regular)] == reg

    def test_indexing_bounds(self):
        replay = StratifiedReplay(4)
        for i in range(3):
            replay.append(make_exp(i, False))
        assert replay[-1].state[0] == 2.0
        with pytest.raises(IndexError):
            replay[3]
        with pytest.raises(IndexError):
            replay[-4]

    def test_agent_sampling_is_deterministic_and_stratified(self):
        """Same seed → same draws; both strata present in the batch."""
        def build():
            agent = DFPAgent(small_config(), rng=42)
            for i in range(50):
                agent.replay.append(make_exp(i, terminal=(i % 7 == 0)))
            return agent

        a, b = build(), build()
        batch_a = a._sample_batch(16)
        batch_b = b._sample_batch(16)
        assert [e.state[0] for e in batch_a] == [e.state[0] for e in batch_b]
        assert sum(e.terminal for e in batch_a) == 8  # half the batch
