"""Tests for the CNN state-module variant (Fig. 3 ablation)."""

import numpy as np
import pytest

from repro.core.cnn_state import build_cnn_state_module
from repro.core.dfp import DFPAgent, DFPConfig


class TestBuild:
    def test_output_shape(self, rng):
        module, out_dim = build_cnn_state_module(60, out_dim=16, rng=rng)
        out = module.forward(rng.random((3, 60)))
        assert out.shape == (3, 16)
        assert out_dim == 16

    def test_too_small_state_raises(self, rng):
        with pytest.raises(ValueError):
            module, _ = build_cnn_state_module(4, rng=rng)
            module.forward(rng.random((1, 4)))

    def test_gradients_flow(self, rng):
        module, _ = build_cnn_state_module(60, out_dim=8, rng=rng)
        x = rng.random((2, 60))
        module.zero_grad()
        module.forward(x, training=True)
        grad_in = module.backward(np.ones((2, 8)))
        assert grad_in.shape == x.shape
        has_grad = any(
            np.abs(layer.grads.get("W", np.zeros(1))).sum() > 0
            for layer in module.layers
            if layer.params
        )
        assert has_grad

    def test_plugs_into_dfp_agent(self, rng):
        cfg = DFPConfig(state_dim=60, n_measurements=2, n_actions=3,
                        offsets=(1,), temporal_weights=(1.0,),
                        state_hidden=(8, 8), state_out=8,
                        module_hidden=8, module_out=8, stream_hidden=8)
        module, out_dim = build_cnn_state_module(60, out_dim=12, rng=rng)
        agent = DFPAgent(cfg, rng=rng, state_module=module, state_module_out=12)
        a = agent.act(rng.random(60), rng.random(2), rng.random(2),
                      np.ones(3, dtype=bool))
        assert 0 <= a < 3

    def test_deterministic(self):
        a, _ = build_cnn_state_module(60, rng=np.random.default_rng(5))
        b, _ = build_cnn_state_module(60, rng=np.random.default_rng(5))
        x = np.random.default_rng(0).random((1, 60))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))
