"""Unit tests for worker metrics snapshots and queue throughput/ETA."""

from __future__ import annotations

import shutil
import time

import pytest

from repro.dist.queue import WorkQueue
from repro.exp.runner import grid_tasks
from repro.experiments.harness import ExperimentConfig
from repro.obs.metrics import MetricsRegistry


def make_queue(tmp_path, n_seeds: int = 2) -> WorkQueue:
    queue = WorkQueue(tmp_path / "queue", lease_ttl=30.0)
    config = ExperimentConfig(nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3)
    queue.enqueue(grid_tasks(["heuristic"], ["S1"], config, n_seeds=n_seeds))
    return queue


def snapshot(worker_id: str, rate: float, cells: int = 10, exited: bool = False):
    """A realistic snapshot whose lifetime rate is ``rate`` cells/sec."""
    return MetricsRegistry().snapshot(
        worker_id=worker_id,
        started_at=time.time() - cells / rate,
        cells_done=cells,
        exited=exited,
    )


class TestWorkerMetricsFiles:
    def test_write_read_round_trip(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.write_worker_metrics("w0", snapshot("w0", rate=2.0))
        queue.write_worker_metrics("w1", snapshot("w1", rate=1.0))
        snaps = queue.worker_metrics()
        assert [s["worker_id"] for s in snaps] == ["w0", "w1"]

    def test_missing_and_corrupt_files_tolerated(self, tmp_path):
        queue = make_queue(tmp_path)
        shutil.rmtree(queue.metrics_dir)  # pre-metrics queue layout
        assert queue.worker_metrics() == []
        queue.write_worker_metrics("w0", snapshot("w0", rate=2.0))  # recreates dir
        (queue.metrics_dir / "broken.json").write_text("{not json")
        assert [s["worker_id"] for s in queue.worker_metrics()] == ["w0"]


class TestThroughput:
    def test_status_rate_and_eta(self, tmp_path):
        queue = make_queue(tmp_path)  # 2 pending cells
        queue.write_worker_metrics("w0", snapshot("w0", rate=0.5))
        queue.write_worker_metrics("w1", snapshot("w1", rate=0.5))
        status = queue.status()
        assert status.pending == 2
        # Concurrent workers' lifetime rates add: 0.5 + 0.5 cells/s.
        assert status.cells_per_sec == pytest.approx(1.0, rel=0.05)
        assert status.eta_s == pytest.approx(2.0, rel=0.05)
        assert "throughput" in status.summary()
        assert status.to_json_dict()["cells_per_sec"] == status.cells_per_sec

    def test_exited_workers_excluded_when_any_live(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.write_worker_metrics("gone", snapshot("gone", rate=100.0, exited=True))
        queue.write_worker_metrics("w0", snapshot("w0", rate=1.0))
        status = queue.status()
        assert status.cells_per_sec == pytest.approx(1.0, rel=0.05)

    def test_all_exited_still_reports_historical_rate(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.write_worker_metrics("gone", snapshot("gone", rate=2.0, exited=True))
        status = queue.status()
        assert status.cells_per_sec == pytest.approx(2.0, rel=0.05)

    def test_graceful_none_without_snapshots(self, tmp_path):
        queue = make_queue(tmp_path)
        status = queue.status()
        assert status.cells_per_sec is None and status.eta_s is None
        assert "throughput" not in status.summary()

    def test_zero_progress_snapshots_give_none(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.write_worker_metrics(
            "w0",
            MetricsRegistry().snapshot(
                worker_id="w0", started_at=time.time() - 5.0, cells_done=0
            ),
        )
        status = queue.status()
        assert status.cells_per_sec is None and status.eta_s is None
