"""Tests for Table III workloads (S1–S5) and the power case study (S6–S10)."""

import numpy as np
import pytest

from repro.cluster.resources import BURST_BUFFER, NODE, POWER, SystemConfig
from repro.workload.suites import (
    CASE_STUDY_SPECS,
    POWER_PER_NODE_RANGE,
    POWER_UNIT_W,
    WORKLOAD_SPECS,
    WorkloadSpec,
    build_case_study_workload,
    build_workload,
    scaled_power_budget_units,
)
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace


@pytest.fixture(scope="module")
def base_trace():
    return generate_theta_trace(
        ThetaTraceConfig(total_nodes=128, n_jobs=800), seed=21
    )


@pytest.fixture(scope="module")
def system():
    return SystemConfig.mini_theta(nodes=128, bb_units=64)


class TestSpecs:
    def test_table3_rows_present(self):
        assert set(WORKLOAD_SPECS) == {"S1", "S2", "S3", "S4", "S5"}
        assert set(CASE_STUDY_SPECS) == {"S6", "S7", "S8", "S9", "S10"}

    def test_table3_fractions(self):
        assert WORKLOAD_SPECS["S1"].bb_fraction == 0.50
        assert WORKLOAD_SPECS["S2"].bb_fraction == 0.75
        assert WORKLOAD_SPECS["S3"].bb_fraction == 0.50
        assert WORKLOAD_SPECS["S4"].bb_fraction == 0.75
        assert WORKLOAD_SPECS["S5"].bb_fraction == 0.75

    def test_s5_halves_nodes(self):
        assert WORKLOAD_SPECS["S5"].node_scale == 0.5
        assert all(WORKLOAD_SPECS[s].node_scale == 1.0 for s in ("S1", "S2", "S3", "S4"))

    def test_ranges_match_paper(self):
        # S1/S2: [5 TB, 285 TB] of 1290 TB; S3/S4/S5: [20 TB, 285 TB].
        assert WORKLOAD_SPECS["S1"].bb_lo_frac == pytest.approx(5 / 1290)
        assert WORKLOAD_SPECS["S3"].bb_lo_frac == pytest.approx(20 / 1290)
        for s in WORKLOAD_SPECS.values():
            assert s.bb_hi_frac == pytest.approx(285 / 1290)

    def test_case_study_marks_power(self):
        assert all(s.with_power for s in CASE_STUDY_SPECS.values())
        assert not any(s.with_power for s in WORKLOAD_SPECS.values())

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("X", bb_fraction=2.0, bb_lo_frac=0.1, bb_hi_frac=0.2)
        with pytest.raises(ValueError):
            WorkloadSpec("X", bb_fraction=0.5, bb_lo_frac=0.3, bb_hi_frac=0.2)
        with pytest.raises(ValueError):
            WorkloadSpec("X", bb_fraction=0.5, bb_lo_frac=0.1, bb_hi_frac=0.2, node_scale=0)


class TestBuildWorkload:
    def test_unknown_name(self, base_trace, system):
        with pytest.raises(KeyError):
            build_workload("S99", base_trace, system)

    def test_bb_fraction_approximate(self, base_trace, system):
        jobs = build_workload("S2", base_trace, system, seed=1)
        frac = np.mean([j.request(BURST_BUFFER) > 0 for j in jobs])
        assert 0.70 < frac < 0.80

    def test_bb_sizes_within_capacity(self, base_trace, system):
        for name in WORKLOAD_SPECS:
            jobs = build_workload(name, base_trace, system, seed=2)
            for job in jobs:
                assert 0 <= job.request(BURST_BUFFER) <= system.capacity(BURST_BUFFER)

    def test_s3_sizes_exceed_s1_floor(self, base_trace, system):
        """S3's 20 TB floor maps to ≥1 unit on the mini system and its
        mean request exceeds S1's (heavier contention)."""
        s1 = build_workload("S1", base_trace, system, seed=3)
        s3 = build_workload("S3", base_trace, system, seed=3)
        mean_bb = lambda jobs: np.mean(
            [j.request(BURST_BUFFER) for j in jobs if j.request(BURST_BUFFER) > 0]
        )
        assert mean_bb(s3) > mean_bb(s1)

    def test_s5_nodes_halved(self, base_trace, system):
        s4 = build_workload("S4", base_trace, system, seed=4)
        s5 = build_workload("S5", base_trace, system, seed=4)
        for j4, j5 in zip(s4, s5):
            expected = max(1, round(j4.request(NODE) * 0.5))
            assert j5.request(NODE) == min(expected, system.capacity(NODE))

    def test_contention_ladder_monotone(self, base_trace, system):
        """BB-vs-node demand ratio increases from S1 to S5 (Table III's
        light→heavy contention design)."""
        ratios = {}
        for name in WORKLOAD_SPECS:
            jobs = build_workload(name, base_trace, system, seed=5)
            rt = np.array([j.runtime for j in jobs])
            bb = np.array([j.request(BURST_BUFFER) for j in jobs])
            nodes = np.array([j.request(NODE) for j in jobs])
            bb_demand = (bb * rt).sum() / system.capacity(BURST_BUFFER)
            node_demand = (nodes * rt).sum() / system.capacity(NODE)
            ratios[name] = bb_demand / node_demand
        assert ratios["S1"] < ratios["S2"]
        assert ratios["S1"] < ratios["S3"]
        assert ratios["S3"] < ratios["S4"] < ratios["S5"]

    def test_base_trace_not_mutated(self, base_trace, system):
        before = [dict(j.requests) for j in base_trace]
        build_workload("S4", base_trace, system, seed=6)
        assert [dict(j.requests) for j in base_trace] == before

    def test_deterministic_under_seed(self, base_trace, system):
        a = build_workload("S1", base_trace, system, seed=7)
        b = build_workload("S1", base_trace, system, seed=7)
        assert [j.requests for j in a] == [j.requests for j in b]


class TestCaseStudy:
    def test_power_system_extension(self, base_trace, system):
        jobs, powered = build_case_study_workload("S6", base_trace, system, seed=8)
        assert POWER in powered.names
        assert powered.capacity(POWER) == scaled_power_budget_units(system)

    def test_power_requests_bounded(self, base_trace, system):
        jobs, powered = build_case_study_workload("S9", base_trace, system, seed=9)
        lo, hi = POWER_PER_NODE_RANGE
        budget = powered.capacity(POWER)
        for job in jobs:
            nodes = job.request(NODE)
            units = job.request(POWER)
            assert 1 <= units <= budget
            # ceil(nodes * per_node / unit) with per_node in [lo, hi],
            # power-capped at the facility budget.
            assert units <= np.ceil(nodes * hi / POWER_UNIT_W)
            assert units >= min(budget, np.floor(nodes * lo / POWER_UNIT_W))

    def test_budget_scaling(self):
        small = SystemConfig.mini_theta(nodes=128, bb_units=64)
        big = SystemConfig.mini_theta(nodes=256, bb_units=64)
        assert scaled_power_budget_units(big) == pytest.approx(
            2 * scaled_power_budget_units(small), rel=0.02
        )

    def test_non_power_spec_rejected(self, base_trace, system):
        with pytest.raises(ValueError):
            build_case_study_workload(WORKLOAD_SPECS["S1"], base_trace, system)
