"""Unit tests for the run manifest + atomic batch enqueue
(repro.dist.manifest and the WorkQueue batch/manifest surface)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.manifest import (
    COORDINATOR_KEY,
    ManifestCorrupt,
    RunManifest,
    batch_name,
    ensure_enqueued,
)
from repro.dist.queue import WorkQueue
from repro.exp.records import ExperimentTask
from repro.exp.runner import grid_tasks
from repro.experiments.harness import ExperimentConfig


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3)
    base.update(overrides)
    return ExperimentConfig(**base)


def tiny_tasks(n_seeds: int = 2, workload: str = "S1") -> list[ExperimentTask]:
    return grid_tasks(["heuristic"], [workload], tiny_config(), n_seeds=n_seeds)


def make_manifest(**overrides) -> RunManifest:
    base = dict(
        run_id="abc123", generation=1, keys=("k1", "k2"),
        context={"batch_episodes": 1}, state="sealed",
        batches=(batch_name(1),), created_at=10.0, updated_at=11.0,
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRunManifest:
    def test_rejects_bad_state_and_generation(self):
        with pytest.raises(ValueError, match="state"):
            make_manifest(state="draining")
        with pytest.raises(ValueError, match="generation"):
            make_manifest(generation=0)
        with pytest.raises(ValueError, match="generation"):
            make_manifest(generation=True)
        with pytest.raises(ValueError, match="run_id"):
            make_manifest(run_id="")

    def test_round_trip_is_lossless(self):
        manifest = make_manifest()
        again = RunManifest.from_json_dict(
            json.loads(json.dumps(manifest.to_json_dict(), sort_keys=True))
        )
        assert again == manifest

    @settings(max_examples=50, deadline=None)
    @given(
        run_id=st.text(
            alphabet="abcdef0123456789", min_size=1, max_size=16
        ),
        generation=st.integers(min_value=1, max_value=9999),
        keys=st.lists(
            st.text(alphabet="0123456789abcdef", min_size=1, max_size=24),
            max_size=8,
        ),
        state=st.sampled_from(("staged", "sealed", "complete")),
        n_batches=st.integers(min_value=0, max_value=4),
        created_at=st.floats(
            min_value=0, max_value=2e9, allow_nan=False, allow_infinity=False
        ),
        context=st.dictionaries(
            st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
            st.one_of(st.integers(), st.booleans(), st.text(max_size=8)),
            max_size=4,
        ),
    )
    def test_serialization_round_trip_property(
        self, run_id, generation, keys, state, n_batches, created_at, context
    ):
        """Hypothesis: to_json_dict → json → from_json_dict is identity
        over the whole constructible manifest space."""
        manifest = RunManifest(
            run_id=run_id,
            generation=generation,
            keys=tuple(keys),
            context=context,
            state=state,
            batches=tuple(batch_name(g + 1) for g in range(n_batches)),
            created_at=created_at,
            updated_at=created_at + 1.0,
        )
        wire = json.dumps(manifest.to_json_dict(), sort_keys=True)
        assert RunManifest.from_json_dict(json.loads(wire)) == manifest


class TestQueueManifestSurface:
    def test_missing_manifest_reads_none(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.read_manifest() is None

    def test_write_read_round_trip(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        manifest = make_manifest()
        queue.write_manifest(manifest)
        assert queue.read_manifest() == manifest

    def test_corrupt_manifest_raises_and_quarantines(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.write_manifest(make_manifest())
        raw = queue.manifest_path.read_text()
        queue.manifest_path.write_text(raw.replace('"sealed"', '"staged"'))
        with pytest.raises(ManifestCorrupt, match="checksum"):
            queue.read_manifest()
        queue.quarantine_manifest("checksum mismatch")
        assert not queue.manifest_path.exists()
        assert queue.quarantine_count() == 1
        # Unparseable JSON is corrupt too, not an empty manifest.
        queue.manifest_path.write_text("{not json")
        with pytest.raises(ManifestCorrupt, match="JSON"):
            queue.read_manifest()


class TestBatchEnqueue:
    def test_stage_then_promote_publishes_keys(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        tasks = tiny_tasks()
        name = batch_name(1)
        queue.stage_batch(tasks, name)
        # Staged ≠ published: nothing visible yet.
        assert queue.task_keys() == []
        assert queue.promote_staged((name,)) == [name]
        assert queue.task_keys() == sorted(t.key() for t in tasks)
        # Idempotent: a second promote is a silent no-op.
        assert queue.promote_staged((name,)) == []

    def test_batch_and_per_file_specs_union(self, tmp_path):
        """The two enqueue paths coexist: per-file specs (elastic
        workers, old queues) and batch lines merge into one key space,
        and load_task serves either."""
        queue = WorkQueue(tmp_path / "q")
        batch_tasks = tiny_tasks(n_seeds=2)
        file_tasks = tiny_tasks(n_seeds=2, workload="S4")
        queue.stage_batch(batch_tasks, batch_name(1))
        queue.promote_staged((batch_name(1),))
        queue.enqueue(file_tasks)
        expected = sorted(t.key() for t in batch_tasks + file_tasks)
        assert queue.task_keys() == expected
        for task in batch_tasks + file_tasks:
            assert queue.load_task(task.key()) == task

    def test_corrupt_batch_line_is_quarantined_not_merged(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        tasks = tiny_tasks()
        queue.stage_batch(tasks, batch_name(1))
        queue.promote_staged((batch_name(1),))
        path = queue.tasks_dir / batch_name(1)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-1] + ("0" if lines[0][-1] != "0" else "1")
        path.write_text("\n".join(lines) + "\n")
        fresh = WorkQueue(tmp_path / "q", create=False)  # cold cache
        keys = fresh.task_keys()
        assert len(keys) == len(tasks) - 1
        assert fresh.quarantine_count() == 1
        record = fresh.quarantined()[0]
        assert record["origin"] == batch_name(1)
        assert "checksum" in record["reason"]

    def test_unknown_key_still_raises_file_not_found(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        with pytest.raises(FileNotFoundError):
            queue.load_task("deadbeef")


class TestEnsureEnqueued:
    def test_fresh_enqueue_seals_generation_one(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        tasks = tiny_tasks()
        manifest = ensure_enqueued(queue, tasks, context={"x": 1})
        assert manifest.state == "sealed"
        assert manifest.generation == 1
        assert set(manifest.keys) == {t.key() for t in tasks}
        assert manifest.batches == (batch_name(1),)
        assert manifest.context == {"x": 1}
        assert queue.task_keys() == sorted(t.key() for t in tasks)
        # Re-running against the sealed state is a no-op.
        again = ensure_enqueued(queue, tasks)
        assert again == manifest

    def test_staged_crash_resumes_same_generation(self, tmp_path):
        """A crash between 'staged' and 'sealed' (nothing published)
        re-stages deterministically under the same generation."""
        queue = WorkQueue(tmp_path / "q")
        tasks = tiny_tasks()
        # Fabricate the exact disk state a coordinator killed right
        # after writing the staged manifest leaves behind.
        queue.write_manifest(
            RunManifest(
                run_id="r1", generation=1,
                keys=tuple(t.key() for t in tasks), context={},
                state="staged", batches=(batch_name(1),),
            )
        )
        assert queue.task_keys() == []  # nothing published yet
        resumed = ensure_enqueued(queue, tasks)
        assert resumed.state == "sealed"
        assert resumed.generation == 1
        assert resumed.run_id == "r1"  # identity survives the crash
        assert queue.task_keys() == sorted(t.key() for t in tasks)

    def test_sealed_crash_resumes_promotion(self, tmp_path):
        """A crash between seal and promote is healed by the idempotent
        promote on the next invocation."""
        queue = WorkQueue(tmp_path / "q")
        tasks = tiny_tasks()
        name = batch_name(1)
        queue.stage_batch(tasks, name)
        queue.write_manifest(
            RunManifest(
                run_id="r2", generation=1,
                keys=tuple(t.key() for t in tasks), context={},
                state="sealed", batches=(name,),
            )
        )
        assert queue.task_keys() == []  # crash left nothing promoted
        manifest = ensure_enqueued(queue, tasks)
        assert manifest.run_id == "r2"
        assert manifest.generation == 1
        assert queue.task_keys() == sorted(t.key() for t in tasks)

    def test_new_grid_opens_next_generation(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        first = tiny_tasks()
        second = tiny_tasks(workload="S4")
        ensure_enqueued(queue, first)
        manifest = ensure_enqueued(queue, first + second)
        assert manifest.generation == 2
        assert set(manifest.keys) == {t.key() for t in first + second}
        assert manifest.batches == (batch_name(1), batch_name(2))
        assert queue.task_keys() == sorted(
            t.key() for t in first + second
        )

    def test_corrupt_manifest_is_quarantined_and_rebuilt(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        tasks = tiny_tasks()
        ensure_enqueued(queue, tasks)
        queue.manifest_path.write_text("{garbage")
        manifest = ensure_enqueued(queue, tasks)
        assert manifest.state == "sealed"
        assert queue.quarantine_count() == 1
        assert set(manifest.keys) == {t.key() for t in tasks}

    def test_batch_equivalence_with_per_file_enqueue(self, tmp_path):
        """The batch path and the legacy per-file path publish the same
        key space for the same grid."""
        tasks = tiny_tasks()
        batch_q = WorkQueue(tmp_path / "batch")
        ensure_enqueued(batch_q, tasks)
        file_q = WorkQueue(tmp_path / "file")
        file_q.enqueue(tasks)
        assert batch_q.task_keys() == file_q.task_keys()
        for task in tasks:
            assert batch_q.load_task(task.key()) == file_q.load_task(
                task.key()
            )


class TestStatusSurface:
    def test_status_reports_manifest_and_skips_reserved_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        tasks = tiny_tasks()
        ensure_enqueued(queue, tasks, context={})
        queue.leases.try_claim(COORDINATOR_KEY, "coord-host-1234")
        status = queue.status()
        # The leader lease is not a task claim...
        assert status.leased_live == 0 and status.unclaimed == len(tasks)
        # ...but it is reported as the coordinator.
        assert status.coordinator["owner"] == "coord-host-1234"
        assert status.coordinator["live"] is True
        assert status.enqueue == "sealed"
        assert status.manifest["generation"] == 1
        assert status.manifest["cells"] == len(tasks)
        doc = status.to_json_dict()
        assert doc["enqueue"] == "sealed"
        assert doc["spool_backlog"] == 0
        assert doc["manifest"]["state"] == "sealed"

    def test_status_flags_corrupt_manifest(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.manifest_path.write_text("{nope")
        assert queue.status().enqueue == "corrupt"

    def test_spool_backlog_sums_worker_snapshots(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.write_worker_metrics("w0", {
            "counters": {"store.degraded_entries": 5,
                         "store.spool_flushed": 2},
        })
        queue.write_worker_metrics("w1", {
            "counters": {"store.degraded_entries": 1,
                         "store.spool_flushed": 1},
        })
        assert queue.status().spool_backlog == 3


class TestCoordinatorFaultPlan:
    def test_kill_point_validation(self):
        with pytest.raises(ValueError, match="kill_coordinator_at"):
            FaultPlan(kill_coordinator_at="enqueue")
        with pytest.raises(ValueError, match="kill_coordinator_nth"):
            FaultPlan(kill_coordinator_at="merge", kill_coordinator_nth=0)
        plan = FaultPlan(kill_coordinator_at="dispatch", kill_coordinator_nth=3)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_on_coordinator_counts_and_fires_nth(self):
        injector = FaultInjector(
            FaultPlan(kill_coordinator_at="dispatch", kill_coordinator_nth=3)
        )
        fired = []
        injector._kill_self = lambda: fired.append(True)
        injector.on_coordinator("staged")
        injector.on_coordinator("dispatch")
        injector.on_coordinator("dispatch")
        assert not fired
        injector.on_coordinator("dispatch")
        assert fired
        assert injector.coordinator_points == {"staged": 1, "dispatch": 3}
