"""The legacy entry points must warn *and* keep working unchanged."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.sched.registry import available_schedulers, make_scheduler


@pytest.fixture
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(nodes=32, bb_units=16, n_jobs=20, window_size=5, seed=3)


class TestMakeSchedulerShim:
    def test_emits_deprecation_warning(self, mini_system):
        with pytest.warns(DeprecationWarning, match="make_scheduler is deprecated"):
            sched = make_scheduler("heuristic", mini_system)
        assert sched.name == "fcfs"  # "heuristic" maps to FCFS list scheduling

    def test_builds_identically_to_registry(self, mini_system):
        from repro.api.registry import SCHEDULERS

        with pytest.warns(DeprecationWarning):
            shimmed = make_scheduler("heuristic", mini_system, window_size=7)
        direct = SCHEDULERS.get("heuristic").build(mini_system, window_size=7)
        assert type(shimmed) is type(direct)
        assert shimmed.window_size == direct.window_size == 7

    def test_available_schedulers_warns_and_matches_api(self):
        from repro.api import list_schedulers

        with pytest.warns(DeprecationWarning, match="available_schedulers"):
            names = available_schedulers()
        assert names == list_schedulers()


class TestRunComparisonShim:
    def test_warns_and_result_keys_unchanged(self, tiny_config):
        """The shim must return the legacy ``{workload: {method: report}}``
        shape with the caller's names, identical to ``api.compare``."""
        from repro.api import compare

        with pytest.warns(DeprecationWarning, match="run_comparison is deprecated"):
            shimmed = run_comparison(
                ["S1"], ["heuristic"], tiny_config, train=False
            )
        direct = compare(["S1"], ["heuristic"], tiny_config, train=False)
        assert set(shimmed) == {"S1"}
        assert set(shimmed["S1"]) == {"heuristic"}
        assert (
            shimmed["S1"]["heuristic"].full_dict()
            == direct["S1"]["heuristic"].full_dict()
        )

    def test_internal_callers_do_not_warn(self, tiny_config):
        """repro's own modules route through api.compare, not the shim."""
        import warnings

        from repro.api import compare

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compare(["S1"], ["heuristic"], tiny_config, train=False)
