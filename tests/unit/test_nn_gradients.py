"""Finite-difference gradient verification for every layer and network.

The hand-written backward passes are the foundation of the whole agent;
each is checked against central finite differences on both inputs and
parameters.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv1D,
    Dense,
    Flatten,
    LeakyReLU,
    MaxPool1D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.network import Sequential

EPS = 1e-6
TOL = 1e-5


def numeric_grad(f, x: np.ndarray) -> np.ndarray:
    """Central finite differences of scalar f with respect to array x."""
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + EPS
        f_plus = f()
        x[idx] = orig - EPS
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * EPS)
        it.iternext()
    return grad


def check_input_grad(layer, x: np.ndarray, seed: int = 0) -> None:
    """Verify d(w·y)/dx for a random projection w."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=layer.forward(x.copy()).shape)

    def scalar() -> float:
        return float((layer.forward(x) * w).sum())

    layer.forward(x)
    analytic = layer.backward(w)
    numeric = numeric_grad(scalar, x)
    np.testing.assert_allclose(analytic, numeric, atol=TOL, rtol=1e-4)


def check_param_grads(layer, x: np.ndarray, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    w = rng.normal(size=layer.forward(x).shape)

    def scalar() -> float:
        return float((layer.forward(x) * w).sum())

    layer.zero_grad()
    layer.forward(x)
    layer.backward(w)
    for name, param in layer.params.items():
        numeric = numeric_grad(scalar, param)
        np.testing.assert_allclose(
            layer.grads[name], numeric, atol=TOL, rtol=1e-4, err_msg=name
        )


class TestLayerGradients:
    def test_dense_input_and_params(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_conv1d_input_and_params(self, rng):
        layer = Conv1D(2, 3, kernel_size=3, stride=2, rng=rng)
        x = rng.normal(size=(2, 9, 2))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_conv1d_stride_one(self, rng):
        layer = Conv1D(1, 2, kernel_size=2, stride=1, rng=rng)
        x = rng.normal(size=(3, 6, 1))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    @pytest.mark.parametrize(
        "layer_factory",
        [ReLU, lambda: LeakyReLU(0.07), Tanh, Sigmoid, Softmax],
        ids=["relu", "leaky", "tanh", "sigmoid", "softmax"],
    )
    def test_activation_gradients(self, layer_factory, rng):
        layer = layer_factory()
        # Offset from 0 to dodge the ReLU kink where FD is ill-defined.
        x = rng.normal(size=(4, 6)) + 0.3 * np.sign(rng.normal(size=(4, 6)))
        x[np.abs(x) < 0.05] = 0.1
        check_input_grad(layer, x)

    def test_maxpool_gradient(self, rng):
        layer = MaxPool1D(2)
        # Distinct values avoid argmax ties, which break FD.
        x = rng.permutation(24).reshape(2, 6, 2).astype(float)
        check_input_grad(layer, x)

    def test_flatten_gradient(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4))
        check_input_grad(layer, x)


class TestNetworkGradients:
    def test_mlp_end_to_end(self, rng):
        net = Sequential(
            [Dense(5, 8, rng=rng), LeakyReLU(0.1), Dense(8, 3, rng=rng), Tanh()]
        )
        x = rng.normal(size=(4, 5))
        w = rng.normal(size=(4, 3))

        def scalar() -> float:
            return float((net.forward(x) * w).sum())

        net.zero_grad()
        net.forward(x)
        analytic_x = net.backward(w)
        np.testing.assert_allclose(
            analytic_x, numeric_grad(scalar, x), atol=TOL, rtol=1e-4
        )
        for layer in net.layers:
            for name, param in layer.params.items():
                np.testing.assert_allclose(
                    layer.grads[name],
                    numeric_grad(scalar, param),
                    atol=TOL,
                    rtol=1e-4,
                )

    def test_cnn_pipeline(self, rng):
        net = Sequential(
            [
                Conv1D(1, 2, kernel_size=3, stride=2, rng=rng),
                LeakyReLU(0.1),
                Flatten(),
                Dense(8, 2, rng=rng),
            ]
        )
        x = rng.normal(size=(2, 9, 1))
        w = rng.normal(size=(2, 2))

        def scalar() -> float:
            return float((net.forward(x) * w).sum())

        net.zero_grad()
        net.forward(x)
        analytic_x = net.backward(w)
        np.testing.assert_allclose(
            analytic_x, numeric_grad(scalar, x), atol=TOL, rtol=1e-4
        )
