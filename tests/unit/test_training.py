"""Tests for the episode runner and curriculum training (§III-D)."""

import pytest

from repro.core.training import TrainingResult, curriculum_training, train_episodes
from repro.sched.fcfs import FCFSScheduler
from repro.sched.scalar_rl import ScalarRLScheduler
from tests.conftest import make_job
from tests.unit.test_mrsch import small_mrsch


def jobset(n=8, seed_offset=0):
    return [
        make_job(job_id=i + 1, submit=i * 30.0 + seed_offset,
                 runtime=100.0 + 10 * i, nodes=1 + (i % 3), bb=i % 2)
        for i in range(n)
    ]


class TestTrainEpisodes:
    def test_untrainable_scheduler_rejected(self, tiny_system):
        with pytest.raises(TypeError, match="not trainable"):
            train_episodes(FCFSScheduler(), [jobset()], tiny_system)

    def test_losses_recorded_per_episode(self, tiny_system):
        sched = small_mrsch(tiny_system)
        result = train_episodes(sched, [jobset(), jobset(6)], tiny_system)
        assert result.episodes == 2
        assert result.phases == ["train", "train"]
        assert len(result.epsilons) == 2

    def test_training_flag_restored(self, tiny_system):
        sched = small_mrsch(tiny_system)
        train_episodes(sched, [jobset()], tiny_system)
        assert sched.training is False

    def test_training_flag_restored_on_error(self, tiny_system):
        sched = small_mrsch(tiny_system)
        bad = [make_job(job_id=1, nodes=999)]  # exceeds capacity
        with pytest.raises(ValueError):
            train_episodes(sched, [bad], tiny_system)
        assert sched.training is False

    def test_appends_to_existing_result(self, tiny_system):
        sched = small_mrsch(tiny_system)
        result = train_episodes(sched, [jobset()], tiny_system, phase="a")
        result = train_episodes(sched, [jobset()], tiny_system, phase="b", result=result)
        assert result.phases == ["a", "b"]

    def test_works_for_scalar_rl(self, tiny_system):
        sched = ScalarRLScheduler(tiny_system, window_size=4, seed=0)
        result = train_episodes(sched, [jobset()], tiny_system)
        assert result.episodes == 1


class TestCurriculum:
    def test_order_must_permute_phases(self, tiny_system):
        sched = small_mrsch(tiny_system)
        curriculum = {"sampled": [jobset()], "real": [jobset()], "synthetic": [jobset()]}
        with pytest.raises(ValueError):
            curriculum_training(sched, curriculum, tiny_system, order=("sampled", "real"))

    def test_phases_run_in_order(self, tiny_system):
        sched = small_mrsch(tiny_system)
        curriculum = {
            "sampled": [jobset(5)],
            "real": [jobset(5), jobset(5)],
            "synthetic": [jobset(5)],
        }
        result = curriculum_training(
            sched, curriculum, tiny_system, order=("synthetic", "sampled", "real")
        )
        assert result.phases == ["synthetic", "sampled", "real", "real"]


class TestTrainingResult:
    def test_final_loss_tail(self):
        r = TrainingResult(losses=[5.0, 4.0, 1.0, 1.0], phases=[], epsilons=[])
        assert r.final_loss(tail=2) == pytest.approx(1.0)

    def test_final_loss_empty(self):
        assert TrainingResult().final_loss() == 0.0
