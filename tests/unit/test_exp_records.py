"""Unit tests for the experiment engine's records and result cache."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exp.cache import ResultCache
from repro.exp.records import (
    ExperimentTask,
    TaskResult,
    canonical_json,
    task_key,
)
from repro.experiments.harness import ExperimentConfig
from repro.sim.metrics import MetricReport


def make_task(**overrides) -> ExperimentTask:
    base = dict(
        method="heuristic",
        workloads=("S1", "S2"),
        seed=7,
        config=ExperimentConfig(nodes=32, bb_units=16, n_jobs=20),
    )
    base.update(overrides)
    return ExperimentTask(**base)


def make_report(avg_wait: float = 12.5) -> MetricReport:
    return MetricReport(
        utilization={"node": 0.8, "burst_buffer": 0.3},
        avg_wait=avg_wait,
        avg_slowdown=1.5,
        max_wait=99.0,
        p95_slowdown=2.25,
        makespan=1000.0,
        n_jobs=20,
    )


class TestTaskKey:
    def test_key_is_stable(self):
        assert make_task().key() == make_task().key()

    def test_key_changes_with_any_field(self):
        base = make_task().key()
        assert make_task(method="mrsch").key() != base
        assert make_task(seed=8).key() != base
        assert make_task(workloads=("S1",)).key() != base
        assert make_task(train=True).key() != base
        assert make_task(case_study=True).key() != base
        assert make_task(extra=(("prior_weight", 0.0),)).key() != base
        assert (
            make_task(config=ExperimentConfig(nodes=64, bb_units=16, n_jobs=20)).key()
            != base
        )

    def test_key_sees_nested_config_fields(self):
        from repro.sched.ga import NSGA2Config

        a = make_task(
            config=ExperimentConfig(ga_config=NSGA2Config(population=12, generations=6))
        )
        b = make_task(
            config=ExperimentConfig(ga_config=NSGA2Config(population=12, generations=7))
        )
        assert a.key() != b.key()

    def test_canonical_json_rejects_unhashable_payloads(self):
        with pytest.raises(TypeError, match="canonicalise"):
            canonical_json({"bad": object()})

    def test_canonical_json_orders_dict_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_task_key_matches_method(self):
        task = make_task()
        assert task.key() == task_key(task)

    def test_label_is_provenance_not_semantics(self):
        """Relabelling a cell must still hit the cache/checkpoint."""
        assert make_task(label="MLP").key() == make_task().key()
        assert make_task(label="MLP").display_name == "MLP"

    def test_capture_traces_changes_key_only_when_set(self):
        """A traced cell is a distinct artifact (result + traces), but
        the default leaves pre-existing untraced keys untouched."""
        assert make_task(capture_traces=False).key() == make_task().key()
        assert make_task(capture_traces=True).key() != make_task().key()


class TestTaskResultJson:
    def test_roundtrip_is_lossless(self):
        result = TaskResult(
            key="abc",
            method="heuristic",
            seed=7,
            workloads=("S1", "S2"),
            metrics={"S1": make_report(1.0), "S2": make_report(2.0)},
            wall_time=0.5,
            label="H",
        )
        back = TaskResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert back.key == result.key
        assert back.workloads == result.workloads
        assert back.display_name == "H"
        for w in result.workloads:
            assert back.metrics[w].full_dict() == result.metrics[w].full_dict()

    def test_trace_keys_roundtrip_and_legacy_default(self):
        result = TaskResult(
            key="abc",
            method="mrsch",
            seed=7,
            workloads=("S1",),
            metrics={"S1": make_report()},
            wall_time=0.5,
            trace_keys=("abc_S1",),
        )
        back = TaskResult.from_json_dict(result.to_json_dict())
        assert back.trace_keys == ("abc_S1",)
        # Journals written before trace capture existed still load.
        legacy = result.to_json_dict()
        legacy.pop("trace_keys")
        assert TaskResult.from_json_dict(legacy).trace_keys == ()

    def test_worker_provenance_roundtrips(self):
        result = TaskResult(
            key="abc",
            method="heuristic",
            seed=7,
            workloads=("S1",),
            metrics={"S1": make_report()},
            wall_time=0.5,
            worker_id="host-123-abcdef",
            hostname="nodeA",
        )
        back = TaskResult.from_json_dict(result.to_json_dict())
        assert back.worker_id == "host-123-abcdef"
        assert back.hostname == "nodeA"

    def test_worker_provenance_legacy_default(self):
        """Journals written before repro.dist existed still load."""
        result = TaskResult(
            key="abc",
            method="heuristic",
            seed=7,
            workloads=("S1",),
            metrics={"S1": make_report()},
            wall_time=0.5,
        )
        legacy = result.to_json_dict()
        legacy.pop("worker_id")
        legacy.pop("hostname")
        back = TaskResult.from_json_dict(legacy)
        assert back.worker_id == ""
        assert back.hostname == ""

    def test_metric_report_full_dict_roundtrip(self):
        report = make_report()
        clone = MetricReport.from_dict(report.full_dict())
        assert clone.full_dict() == report.full_dict()
        assert clone.node_util == report.node_util
        assert clone.bb_util == report.bb_util


class TestTaskJson:
    """Task specs round-trip through JSON (the dist queue's task files)."""

    def test_roundtrip_preserves_key(self):
        task = make_task(
            extra=(("prior_weight", 0.5),),
            label="H",
            capture_traces=True,
        )
        back = ExperimentTask.from_json_dict(
            json.loads(json.dumps(task.to_json_dict()))
        )
        assert back.key() == task.key()
        assert back == task

    def test_roundtrip_preserves_nested_config(self):
        from repro.sched.ga import NSGA2Config

        task = make_task(
            config=ExperimentConfig(
                nodes=64,
                curriculum_sets=(2, 1, 1),
                ga_config=NSGA2Config(population=12, generations=6),
            )
        )
        back = ExperimentTask.from_json_dict(task.to_json_dict())
        assert back.config == task.config
        assert back.config.ga_config.population == 12
        assert back.config.curriculum_sets == (2, 1, 1)


class TestResultCache:
    def _result(self, key: str = "k1") -> TaskResult:
        return TaskResult(
            key=key,
            method="heuristic",
            seed=7,
            workloads=("S1",),
            metrics={"S1": make_report()},
            wall_time=0.1,
        )

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self._result())
        hit = cache.get("k1")
        assert hit is not None
        assert hit.source == "cache"
        assert hit.metrics["S1"].full_dict() == make_report().full_dict()

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("nope") is None

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text('{"key": "bad"')
        assert cache.get("bad") is None

    def test_contains_len_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self._result("a"))
        cache.put(self._result("b"))
        assert "a" in cache and "b" in cache and "c" not in cache
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self._result())
        assert list(tmp_path.glob("*.tmp")) == []


class TestTaskImmutability:
    def test_tasks_are_frozen(self):
        task = make_task()
        with pytest.raises(dataclasses.FrozenInstanceError):
            task.seed = 99  # type: ignore[misc]
