"""Tests for loss functions: values, gradients, masking."""

import numpy as np
import pytest

from repro.nn.losses import cross_entropy_loss, huber_loss, mse_loss


class TestMSE:
    def test_zero_at_match(self, rng):
        x = rng.random((3, 4))
        loss, grad = mse_loss(x, x.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(x))

    def test_known_value(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx((1 + 4) / 2)
        np.testing.assert_allclose(grad, [[1.0, 2.0]])

    def test_mask_restricts_loss(self):
        pred = np.array([[1.0, 100.0]])
        target = np.zeros((1, 2))
        mask = np.array([[1.0, 0.0]])
        loss, grad = mse_loss(pred, target, mask=mask)
        assert loss == pytest.approx(1.0)
        assert grad[0, 1] == 0.0

    def test_gradient_matches_finite_difference(self, rng):
        pred = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 3))
        _, grad = mse_loss(pred, target)
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                p = pred.copy()
                p[i, j] += eps
                up, _ = mse_loss(p, target)
                p[i, j] -= 2 * eps
                dn, _ = mse_loss(p, target)
                assert grad[i, j] == pytest.approx((up - dn) / (2 * eps), rel=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((1, 2)), np.zeros((2, 1)))


class TestHuber:
    def test_quadratic_region_equals_half_mse(self):
        pred = np.array([[0.5]])
        target = np.array([[0.0]])
        loss, grad = huber_loss(pred, target, delta=1.0)
        assert loss == pytest.approx(0.125)
        assert grad[0, 0] == pytest.approx(0.5)

    def test_linear_region_bounded_gradient(self):
        pred = np.array([[10.0]])
        target = np.array([[0.0]])
        _, grad = huber_loss(pred, target, delta=1.0)
        assert abs(grad[0, 0]) == pytest.approx(1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(np.zeros((1, 1)), np.zeros((1, 1)), delta=0.0)


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        probs = np.array([[1.0, 0.0]])
        targets = np.array([[1.0, 0.0]])
        loss, _ = cross_entropy_loss(probs, targets)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_known_value(self):
        probs = np.array([[0.5, 0.5]])
        targets = np.array([[1.0, 0.0]])
        loss, _ = cross_entropy_loss(probs, targets)
        assert loss == pytest.approx(np.log(2))

    def test_gradient_direction(self):
        probs = np.array([[0.3, 0.7]])
        targets = np.array([[1.0, 0.0]])
        _, grad = cross_entropy_loss(probs, targets)
        assert grad[0, 0] < 0  # increase prob of true class to lower loss
        assert grad[0, 1] == 0.0
