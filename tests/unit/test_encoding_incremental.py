"""Incremental state encoder ≡ fresh ``StateEncoder.encode``, bit for bit.

The PR-5 decision fast path patches a persistent state buffer from pool
dirty regions instead of rebuilding the §III-A vector per decision. Its
whole contract is *bit-identity* with the fresh encoder — these tests
pin it with a hypothesis property over random allocate/release/clock/
reset histories (both layout modes), plus unit tests for the dirty
tracker, the attachment lifecycle, and the window byproducts the MRSch
prior consumes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import (
    BURST_BUFFER,
    NODE,
    ResourcePool,
    ResourceSpec,
    SystemConfig,
)
from repro.core.encoding import IncrementalStateEncoder, StateEncoder
from repro.sim.simulator import Simulator
from tests.conftest import make_job


def small_system() -> SystemConfig:
    return SystemConfig(
        resources=(ResourceSpec(NODE, 16), ResourceSpec(BURST_BUFFER, 8))
    )


def job_pool(rng: np.random.Generator, n: int = 24) -> list:
    return [
        make_job(
            job_id=i + 1,
            submit=float(rng.integers(0, 100)),
            runtime=float(rng.integers(10, 500)),
            walltime=float(rng.integers(500, 2000)),
            nodes=int(rng.integers(0, 10)),
            bb=int(rng.integers(0, 5)),
        )
        for i in range(n)
    ]


def encoder_pair(paper: bool, window: int = 4):
    system = small_system()
    fresh = StateEncoder(
        system, window_size=window, time_scale=100.0, paper_layout=paper
    )
    inc = IncrementalStateEncoder(
        StateEncoder(system, window_size=window, time_scale=100.0, paper_layout=paper)
    )
    return system, fresh, inc


class TestBitIdentity:
    """The property the whole fast path rests on."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        paper=st.booleans(),
        steps=st.integers(10, 80),
        big=st.booleans(),
    )
    def test_random_histories_bit_identical(self, seed, paper, steps, big):
        # ``big`` uses a 64+32-unit system where dirty regions stay
        # narrow, exercising the chunk/coalesce patch paths that the
        # tiny system's wide-rebuild threshold would mask.
        if big:
            system = SystemConfig.mini_theta(nodes=64, bb_units=32)
            fresh = StateEncoder(
                system, window_size=4, time_scale=100.0, paper_layout=paper
            )
            inc = IncrementalStateEncoder(
                StateEncoder(
                    system, window_size=4, time_scale=100.0, paper_layout=paper
                )
            )
        else:
            system, fresh, inc = encoder_pair(paper)
        rng = np.random.default_rng(seed)
        jobs = job_pool(rng)
        pool = ResourcePool(system)
        active: list = []
        now = 0.0
        for _ in range(steps):
            op = int(rng.integers(0, 6))
            if op == 0:
                now += float(rng.integers(1, 200))
            elif op == 1 and active:
                pool.release(active.pop(int(rng.integers(0, len(active)))))
            elif op in (2, 5):
                candidates = [j for j in jobs if j not in active]
                if candidates:
                    job = candidates[int(rng.integers(0, len(candidates)))]
                    if pool.can_fit(job):
                        pool.allocate(job, now)
                        active.append(job)
            elif op == 3 and rng.random() < 0.1:
                pool.reset()
                active = []
            size = int(rng.integers(0, 5))
            picks = rng.choice(len(jobs), size=size, replace=False)
            window = [jobs[i] for i in picks]
            a = fresh.encode(window, pool, now)
            b = inc.encode(window, pool, now)
            np.testing.assert_array_equal(a, b)
            if size:
                expected_fits = np.array([pool.can_fit(j) for j in window])
                np.testing.assert_array_equal(
                    inc.window_fits(size, pool), expected_fits
                )

    def test_unsorted_release_burst_coalescing(self):
        """Release chunks whose concatenation would be unsorted must not
        merge: the patch loop's contiguous-slice shortcut infers the
        covered range from the first/last element. Regression for the
        grants-[3,4]+[1,2]+[7] corruption (64-node pool keeps the dirty
        region narrow, so the chunk path — not the wide sweep — runs).
        """
        system = SystemConfig.mini_theta(nodes=64, bb_units=32)
        fresh = StateEncoder(system, window_size=4, time_scale=100.0)
        inc = IncrementalStateEncoder(
            StateEncoder(system, window_size=4, time_scale=100.0)
        )
        pool = ResourcePool(system)
        a = make_job(job_id=1, nodes=1, runtime=100.0, walltime=900.0)
        b = make_job(job_id=2, nodes=2, runtime=100.0, walltime=900.0)
        c = make_job(job_id=3, nodes=2, runtime=100.0, walltime=900.0)
        d = make_job(job_id=4, nodes=2, runtime=100.0, walltime=900.0)
        e = make_job(job_id=5, nodes=1, runtime=100.0, walltime=900.0)
        for job in (a, b, c, d, e):  # grants [0], [1,2], [3,4], [5,6], [7]
            pool.allocate(job, 0.0)
        np.testing.assert_array_equal(
            fresh.encode([], pool, 5.0), inc.encode([], pool, 5.0)
        )
        pool.release(c)  # chunk [3,4]
        pool.release(b)  # chunk [1,2] — would unsort a naive concat
        pool.release(e)  # chunk [7]
        np.testing.assert_array_equal(
            fresh.encode([], pool, 5.0), inc.encode([], pool, 5.0)
        )

    def test_release_then_realloc_same_units(self):
        """Backfill pattern: a reservation grabs just-released units
        before the next encode — chunk order must be preserved."""
        system, fresh, inc = encoder_pair(paper=False)
        pool = ResourcePool(system)
        a = make_job(job_id=1, nodes=8, bb=4, runtime=100.0)
        b = make_job(job_id=2, nodes=8, bb=4, runtime=100.0)
        window = [make_job(job_id=9, nodes=2, runtime=50.0)]
        pool.allocate(a, 0.0)
        np.testing.assert_array_equal(
            fresh.encode(window, pool, 10.0), inc.encode(window, pool, 10.0)
        )
        # Same drain window: release a, then b takes (mostly) a's units.
        pool.release(a)
        pool.allocate(b, 20.0)
        np.testing.assert_array_equal(
            fresh.encode(window, pool, 20.0), inc.encode(window, pool, 20.0)
        )

    def test_window_shrink_restores_zero_padding(self):
        system, fresh, inc = encoder_pair(paper=False)
        pool = ResourcePool(system)
        jobs = [make_job(job_id=i, nodes=2, runtime=100.0) for i in (1, 2, 3)]
        inc.encode(jobs, pool, 5.0)
        got = inc.encode(jobs[:1], pool, 5.0)
        np.testing.assert_array_equal(got, fresh.encode(jobs[:1], pool, 5.0))

    def test_shifted_window_after_start(self):
        """The §III-C transition: head job starts, slots move up."""
        system, fresh, inc = encoder_pair(paper=False)
        pool = ResourcePool(system)
        jobs = [
            make_job(job_id=i, submit=10.0 * i, nodes=1 + i % 3, runtime=100.0)
            for i in range(1, 6)
        ]
        inc.encode(jobs[:4], pool, 50.0)
        pool.allocate(jobs[0], 50.0)
        shifted = jobs[1:5]
        np.testing.assert_array_equal(
            inc.encode(shifted, pool, 50.0), fresh.encode(shifted, pool, 50.0)
        )

    def test_overflow_rejected_like_fresh(self):
        _, _, inc = encoder_pair(paper=False, window=2)
        pool = ResourcePool(small_system())
        jobs = [make_job(job_id=i, nodes=1) for i in range(3)]
        with pytest.raises(ValueError, match="window"):
            inc.encode(jobs, pool, 0.0)

    def test_returns_persistent_buffer(self):
        _, _, inc = encoder_pair(paper=False)
        pool = ResourcePool(small_system())
        first = inc.encode([], pool, 0.0)
        second = inc.encode([], pool, 1.0)
        assert first is second


class TestAttachment:
    def test_attaches_lazily_and_switches_pools(self):
        system, fresh, inc = encoder_pair(paper=False)
        pool_a, pool_b = ResourcePool(system), ResourcePool(system)
        job = make_job(job_id=1, nodes=4, runtime=100.0)
        pool_a.allocate(job, 0.0)
        np.testing.assert_array_equal(
            inc.encode([], pool_a, 5.0), fresh.encode([], pool_a, 5.0)
        )
        # Switching pools must drop the old tracker and rebuild.
        np.testing.assert_array_equal(
            inc.encode([], pool_b, 5.0), fresh.encode([], pool_b, 5.0)
        )
        assert not pool_a._trackers  # unregistered on switch

    def test_mismatched_pool_layout_rejected(self):
        """Both encoders read pool vectors positionally — a pool whose
        resource order differs from the system's must be refused."""
        reordered = SystemConfig(
            resources=(ResourceSpec(BURST_BUFFER, 8), ResourceSpec(NODE, 16))
        )
        system, fresh, inc = encoder_pair(paper=False)
        with pytest.raises(ValueError, match="resource layout"):
            fresh.encode([], ResourcePool(reordered), 0.0)
        with pytest.raises(ValueError, match="resource layout"):
            inc.encode([], ResourcePool(reordered), 0.0)
        # An equal-layout pool built from a different SystemConfig object
        # is fine.
        twin = SystemConfig(
            resources=(ResourceSpec(NODE, 16), ResourceSpec(BURST_BUFFER, 8))
        )
        assert inc.encode([], ResourcePool(twin), 0.0).shape == (fresh.state_dim,)

    def test_detach_is_idempotent(self):
        system, _, inc = encoder_pair(paper=False)
        pool = ResourcePool(system)
        inc.encode([], pool, 0.0)
        inc.detach()
        inc.detach()
        assert not pool._trackers

    def test_dirty_tracking_survives_reset(self):
        """pool.reset() must flag a full rebuild, not leave stale state."""
        system, fresh, inc = encoder_pair(paper=False)
        pool = ResourcePool(system)
        job = make_job(job_id=1, nodes=8, bb=4, runtime=100.0, walltime=500.0)
        pool.allocate(job, 0.0)
        inc.encode([], pool, 10.0)
        pool.reset()
        tracker = inc._tracker
        assert tracker.full
        np.testing.assert_array_equal(
            inc.encode([], pool, 20.0), fresh.encode([], pool, 20.0)
        )


class TestWindowByproducts:
    def test_window_requests_and_fits(self):
        system, _, inc = encoder_pair(paper=False)
        pool = ResourcePool(system)
        pool.allocate(make_job(job_id=9, nodes=12, runtime=100.0), 0.0)
        window = [
            make_job(job_id=1, nodes=10),  # does not fit (4 free)
            make_job(job_id=2, nodes=2, bb=1),  # fits
        ]
        state, reqs, fits = inc.encode_decision(window, pool, 0.0)
        assert state is inc.encode(window, pool, 0.0)
        np.testing.assert_array_equal(reqs, [[10.0, 0.0], [2.0, 1.0]])
        np.testing.assert_array_equal(fits, [False, True])

    def test_views_reject_overlong_requests(self):
        system, _, inc = encoder_pair(paper=False)
        pool = ResourcePool(system)
        inc.encode([make_job(job_id=1, nodes=1)], pool, 0.0)
        with pytest.raises(ValueError, match="populated"):
            inc.window_requests(2)
        with pytest.raises(ValueError, match="populated"):
            inc.window_fits(2, pool)

    def test_fits_in_paper_layout_mode(self):
        system, _, inc = encoder_pair(paper=True)
        pool = ResourcePool(system)
        pool.allocate(make_job(job_id=9, nodes=15, runtime=100.0), 0.0)
        window = [make_job(job_id=1, nodes=4), make_job(job_id=2, nodes=1)]
        _, _, fits = inc.encode_decision(window, pool, 0.0)
        np.testing.assert_array_equal(fits, [False, True])


class TestDirtyTracker:
    def test_marks_and_drains_in_order(self):
        system = small_system()
        pool = ResourcePool(system)
        tracker = pool.register_tracker()
        assert tracker.drain() is None  # fresh tracker: full rebuild
        job = make_job(job_id=1, nodes=3, bb=2, runtime=100.0, walltime=500.0)
        pool.allocate(job, 10.0)
        pool.release(job)
        dirty = tracker.drain()
        idx_a, busy_a, est_a = dirty[NODE][0]
        idx_r, busy_r, est_r = dirty[NODE][1]
        assert busy_a and est_a == 510.0 and idx_a.size == 3
        assert not busy_r and est_r == 0.0
        np.testing.assert_array_equal(idx_a, idx_r)
        assert tracker.drain() == {}  # drained clean

    def test_overflow_collapses_to_full(self):
        system = small_system()
        pool = ResourcePool(system)
        tracker = pool.register_tracker()
        tracker.drain()
        # The limit is max(64, total // 2); 24 total units → 64. Churn
        # one job until the accumulated count crosses it.
        job = make_job(job_id=1, nodes=16, bb=8, runtime=100.0)
        for _ in range(3):
            pool.allocate(job, 0.0)
            pool.release(job)
        assert tracker.full

    def test_unregistered_tracker_stops_updating(self):
        system = small_system()
        pool = ResourcePool(system)
        tracker = pool.register_tracker()
        tracker.drain()
        pool.unregister_tracker(tracker)
        pool.allocate(make_job(job_id=1, nodes=2, runtime=50.0), 0.0)
        assert tracker.drain() == {}
        pool.unregister_tracker(tracker)  # unknown tracker: no-op


class TestMRSchEquivalence:
    def test_incremental_scheduler_matches_reference(self, tiny_system, tiny_trace):
        """The shipped fast path changes nothing about MRSch decisions."""
        from repro.core.mrsch import MRSchScheduler

        def run(incremental: bool):
            sched = MRSchScheduler(
                tiny_system,
                window_size=4,
                seed=11,
                incremental_encoding=incremental,
            )
            jobs = [
                make_job(
                    job_id=j.job_id,
                    submit=j.submit_time,
                    runtime=j.runtime,
                    walltime=j.walltime,
                    nodes=j.requests.get(NODE, 0),
                    bb=j.requests.get(BURST_BUFFER, 0),
                )
                for j in tiny_trace
            ]
            result = Simulator(tiny_system, sched).run(jobs)
            return [(j.job_id, j.start_time, j.end_time) for j in result.jobs]

        assert run(True) == run(False)
