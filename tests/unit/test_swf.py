"""Tests for SWF parsing/writing, including the multi-resource extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.job import Job
from repro.workload.swf import parse_swf, write_swf
from tests.conftest import make_job


def swf_line(
    job_id=1, submit=0, run=100, procs=4, req_procs=4, req_time=200, status=1, extra=()
):
    fields = ["-1"] * 18
    fields[0] = str(job_id)
    fields[1] = str(submit)
    fields[3] = str(run)
    fields[4] = str(procs)
    fields[7] = str(req_procs)
    fields[8] = str(req_time)
    fields[10] = str(status)
    return " ".join(fields + [str(e) for e in extra])


class TestParse:
    def test_basic_fields(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("; comment\n" + swf_line(job_id=3, submit=50, run=120, req_time=600) + "\n")
        jobs = parse_swf(path)
        assert len(jobs) == 1
        job = jobs[0]
        assert job.job_id == 3
        assert job.submit_time == 50.0
        assert job.runtime == 120.0
        assert job.walltime == 600.0
        assert job.request("node") == 4

    def test_skips_failed_jobs(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(swf_line(job_id=1, status=0) + "\n" + swf_line(job_id=2) + "\n")
        jobs = parse_swf(path)
        assert [j.job_id for j in jobs] == [2]
        assert len(parse_swf(path, include_failed=True)) == 2

    def test_skips_zero_runtime(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(swf_line(run=0) + "\n")
        assert parse_swf(path) == []

    def test_falls_back_to_used_procs(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(swf_line(procs=8, req_procs=-1) + "\n")
        assert parse_swf(path)[0].request("node") == 8

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_swf(path)

    def test_non_numeric_field_raises(self, tmp_path):
        path = tmp_path / "t.swf"
        bad = swf_line().split()
        bad[3] = "not-a-number"
        path.write_text(" ".join(bad) + "\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_swf(path)

    def test_lenient_mode_skips_malformed(self, tmp_path):
        path = tmp_path / "t.swf"
        bad = swf_line(job_id=9).split()
        bad[3] = "garbage"
        path.write_text(
            "1 2 3\n" + swf_line(job_id=1) + "\n" + " ".join(bad) + "\n"
            + swf_line(job_id=2) + "\n"
        )
        jobs = parse_swf(path, strict=False)
        assert [j.job_id for j in jobs] == [1, 2]

    def test_extension_columns(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(
            "; X-Resource: burst_buffer\n" + swf_line(extra=(12,)) + "\n"
        )
        jobs = parse_swf(path)
        assert jobs[0].request("burst_buffer") == 12

    def test_max_jobs(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("\n".join(swf_line(job_id=i) for i in range(1, 11)) + "\n")
        assert len(parse_swf(path, max_jobs=3)) == 3

    def test_sorted_by_submit(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(
            swf_line(job_id=1, submit=500) + "\n" + swf_line(job_id=2, submit=100) + "\n"
        )
        jobs = parse_swf(path)
        assert [j.job_id for j in jobs] == [2, 1]


class TestRoundTrip:
    def test_write_then_parse(self, tmp_path):
        jobs = [
            make_job(job_id=1, submit=0, runtime=100, walltime=200, nodes=4, bb=2),
            make_job(job_id=2, submit=60, runtime=3000, walltime=3600, nodes=16, bb=0),
        ]
        path = tmp_path / "out.swf"
        write_swf(path, jobs, extra_resources=["burst_buffer"])
        parsed = parse_swf(path)
        assert len(parsed) == 2
        for orig, got in zip(jobs, parsed):
            assert got.job_id == orig.job_id
            assert got.submit_time == orig.submit_time
            assert got.runtime == orig.runtime
            assert got.walltime == orig.walltime
            assert got.request("node") == orig.request("node")
            assert got.request("burst_buffer") == orig.request("burst_buffer")

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 10**6),  # submit
                st.integers(1, 10**5),  # runtime
                st.integers(1, 4096),  # nodes
                st.integers(0, 1290),  # bb
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_roundtrip_property(self, tmp_path_factory, rows):
        jobs = [
            Job(
                job_id=i + 1,
                submit_time=float(s),
                runtime=float(r),
                walltime=float(r * 2),
                requests={"node": n, "burst_buffer": b},
            )
            for i, (s, r, n, b) in enumerate(rows)
        ]
        path = tmp_path_factory.mktemp("swf") / "p.swf"
        write_swf(path, jobs, extra_resources=["burst_buffer"])
        parsed = parse_swf(path)
        assert len(parsed) == len(jobs)
        by_id = {j.job_id: j for j in parsed}
        for job in jobs:
            got = by_id[job.job_id]
            assert got.runtime == job.runtime
            assert got.request("node") == job.request("node")
            assert got.request("burst_buffer") == job.request("burst_buffer")

    @settings(max_examples=30, deadline=None)
    @given(
        extras=st.lists(
            st.sampled_from(["burst_buffer", "power", "gpu", "licenses"]),
            min_size=0,
            max_size=3,
            unique=True,
        ),
        rows=st.lists(
            st.tuples(
                st.integers(0, 10**6),   # submit
                st.integers(1, 10**5),   # runtime
                st.floats(1.0, 4.0),     # walltime multiplier
                st.integers(1, 4096),    # nodes
                st.lists(st.integers(0, 500), min_size=3, max_size=3),
            ),
            min_size=1,
            max_size=15,
        ),
    )
    def test_roundtrip_preserves_all_fields_property(
        self, tmp_path_factory, extras, rows
    ):
        """write_swf(parse_swf(x)) preserves every job field the format
        carries, including arbitrary `; X-Resource:` extension columns."""
        jobs = [
            Job(
                job_id=i + 1,
                submit_time=float(s),
                runtime=float(r),
                # walltime serialises at whole-second precision
                walltime=float(round(r * mult)),
                requests={"node": n, **dict(zip(extras, amounts))},
            )
            for i, (s, r, mult, n, amounts) in enumerate(rows)
        ]
        path = tmp_path_factory.mktemp("swf") / "p.swf"
        write_swf(path, jobs, extra_resources=extras)

        header = [
            line for line in path.read_text().splitlines() if line.startswith(";")
        ]
        assert [h.split(":", 1)[1].strip() for h in header if "X-Resource" in h] == extras

        parsed = parse_swf(path)
        assert len(parsed) == len(jobs)
        # parse_swf sorts by (submit, job_id) — the simulator's intake order.
        assert [(j.submit_time, j.job_id) for j in parsed] == sorted(
            (j.submit_time, j.job_id) for j in jobs
        )
        by_id = {j.job_id: j for j in parsed}
        for job in jobs:
            got = by_id[job.job_id]
            assert got.submit_time == job.submit_time
            assert got.runtime == job.runtime
            assert got.walltime == job.walltime
            assert got.request("node") == job.request("node")
            for name in extras:
                assert got.request(name) == job.request(name)

    @settings(max_examples=20, deadline=None)
    @given(
        n_good=st.integers(1, 8),
        junk=st.lists(
            st.sampled_from(["1 2 3", "x y z", "-", "0"]), min_size=1, max_size=4
        ),
    )
    def test_lenient_parse_recovers_good_jobs_property(
        self, tmp_path_factory, n_good, junk
    ):
        """Interleaved malformed lines never corrupt neighbouring jobs."""
        good = [swf_line(job_id=i + 1, submit=i * 10) for i in range(n_good)]
        lines = []
        for i, g in enumerate(good):
            lines.append(g)
            lines.append(junk[i % len(junk)])
        path = tmp_path_factory.mktemp("swf") / "m.swf"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_swf(path)
        jobs = parse_swf(path, strict=False)
        assert [j.job_id for j in jobs] == list(range(1, n_good + 1))
