"""Unit tests for the event log, bound context, and the logging bridge."""

from __future__ import annotations

import json
import logging

import repro.obs as obs
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    JsonlSink,
    bind,
    current_context,
    make_event,
    read_events,
    read_jsonl,
)
from repro.obs.logbridge import (
    EventLogHandler,
    configure_stderr_logging,
    get_logger,
    kv,
    verbosity_level,
)


class TestBoundContext:
    def test_nesting_and_innermost_wins(self):
        assert current_context() == {}
        with bind(run_id="r1", worker_id="w0"):
            with bind(key="abc", worker_id="w1"):
                assert current_context() == {
                    "run_id": "r1", "worker_id": "w1", "key": "abc",
                }
            assert current_context() == {"run_id": "r1", "worker_id": "w0"}
        assert current_context() == {}

    def test_make_event_call_site_wins(self):
        with bind(run_id="r1", source="bound"):
            event = make_event("cell_done", source="run", wall_s=1.5)
        assert event["schema"] == EVENT_SCHEMA_VERSION
        assert event["event"] == "cell_done"
        assert event["run_id"] == "r1"
        assert event["source"] == "run"  # call-site field beats bound context
        assert event["wall_s"] == 1.5
        assert isinstance(event["t"], float)


class TestJsonlSink:
    def test_memory_buffer_without_directory(self):
        sink = JsonlSink(None, "events")
        sink.write({"event": "a"})
        assert sink.path is None
        assert sink.buffer == [{"event": "a"}]

    def test_round_trip_and_time_sort(self, tmp_path):
        sink = JsonlSink(tmp_path, "events")
        sink.write(make_event("later"))
        sink.close()
        records = read_events(tmp_path)
        assert [r["event"] for r in records] == ["later"]
        # A second pid-suffixed shard with earlier stamps sorts first.
        shard = tmp_path / "events-99999.jsonl"
        shard.write_text(json.dumps({"event": "earlier", "t": 0.0}) + "\n")
        assert [r["event"] for r in read_events(tmp_path)] == ["earlier", "later"]

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "events-1.jsonl"
        path.write_text(json.dumps({"event": "ok", "t": 1.0}) + "\n" + '{"event": "torn', )
        records = read_jsonl(tmp_path, "events")
        assert [r["event"] for r in records] == ["ok"]


class TestLogBridge:
    def test_verbosity_levels(self):
        assert verbosity_level(quiet=True) == logging.ERROR
        assert verbosity_level() == logging.WARNING
        assert verbosity_level(verbose=1) == logging.INFO
        assert verbosity_level(verbose=2) == logging.DEBUG
        assert verbosity_level(verbose=5) == logging.DEBUG

    def test_stderr_handler_renders_fields_and_is_idempotent(self):
        import io

        stream = io.StringIO()
        configure_stderr_logging(verbose=1, stream=stream)
        handler = configure_stderr_logging(verbose=1, stream=stream)  # replaces
        try:
            root = logging.getLogger("repro")
            assert [h for h in root.handlers if h is handler] == [handler]
            get_logger("repro.dist.worker").info(
                "claimed cell", extra=kv(key="abc123")
            )
            out = stream.getvalue()
            assert "claimed cell" in out and "key=abc123" in out
        finally:
            root.removeHandler(handler)

    def test_records_forward_into_event_log(self):
        session = obs.enable()  # in-memory sinks
        try:
            with bind(worker_id="w7"):
                get_logger("repro.dist.worker").warning(
                    "reaped expired lease", extra=kv(key="k1")
                )
            logged = [e for e in session.events.buffer if e["event"] == "log"]
            assert len(logged) == 1
            (record,) = logged
            assert record["level"] == "WARNING"
            assert record["logger"] == "repro.dist.worker"
            assert record["message"] == "reaped expired lease"
            assert record["key"] == "k1" and record["worker_id"] == "w7"
        finally:
            obs.disable()

    def test_exception_traceback_captured(self):
        session = obs.enable()
        try:
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                get_logger("repro.test").exception("cell execution failed")
            (record,) = [e for e in session.events.buffer if e["event"] == "log"]
            assert "RuntimeError: boom" in record["traceback"]
        finally:
            obs.disable()

    def test_handler_uninstalls_on_disable(self):
        root = logging.getLogger("repro")
        before = [h for h in root.handlers if isinstance(h, EventLogHandler)]
        obs.enable()
        obs.disable()
        after = [h for h in root.handlers if isinstance(h, EventLogHandler)]
        assert after == before


class TestFacade:
    def test_event_and_span_are_noops_when_off(self):
        assert not obs.enabled()
        obs.event("ignored")  # must not raise
        with obs.span("ignored"):
            pass
        assert obs.metrics() is None and obs.session() is None

    def test_enable_is_idempotent_while_enabled(self):
        first = obs.enable()
        try:
            assert obs.enable() is first
        finally:
            obs.disable()
        assert not obs.enabled()
