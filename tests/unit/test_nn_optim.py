"""Tests for optimizers: convergence, state handling, clipping."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import mse_loss
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam, Momentum, RMSProp


def quadratic_step_count(optimizer_cls, lr, tol=1e-3, max_steps=3000, **kwargs) -> int:
    """Steps needed to fit y = 2x + 1 with a single Dense layer."""
    rng = np.random.default_rng(0)
    layer = Dense(1, 1, rng=rng)
    opt = optimizer_cls([layer], lr=lr, **kwargs)
    x = rng.uniform(-1, 1, size=(64, 1))
    y = 2.0 * x + 1.0
    for step in range(max_steps):
        pred = layer.forward(x)
        loss, grad = mse_loss(pred, y)
        if loss < tol:
            return step
        opt.zero_grad()
        layer.backward(grad)
        opt.step()
    return max_steps


@pytest.mark.parametrize(
    "opt_cls,lr",
    [(SGD, 0.5), (Momentum, 0.1), (RMSProp, 0.05), (Adam, 0.05)],
    ids=["sgd", "momentum", "rmsprop", "adam"],
)
def test_optimizers_fit_linear_function(opt_cls, lr):
    steps = quadratic_step_count(opt_cls, lr)
    assert steps < 3000, f"{opt_cls.__name__} failed to converge"


def test_adam_faster_than_sgd_on_ill_conditioned():
    """Adam's per-parameter scaling should beat plain SGD here."""
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(128, 2))
    x[:, 1] *= 100.0  # wildly different feature scales
    true_w = np.array([[1.0], [0.01]])
    y = x @ true_w

    def run(opt_cls, lr):
        layer = Dense(2, 1, rng=np.random.default_rng(2))
        opt = opt_cls([layer], lr=lr)
        for _ in range(300):
            loss, grad = mse_loss(layer.forward(x), y)
            opt.zero_grad()
            layer.backward(grad)
            opt.step()
        return mse_loss(layer.forward(x), y)[0]

    assert run(Adam, 0.05) < run(SGD, 1e-5)


def test_invalid_learning_rate():
    with pytest.raises(ValueError):
        SGD([], lr=0.0)
    with pytest.raises(ValueError):
        Adam([], lr=-1.0)


def test_momentum_validation():
    with pytest.raises(ValueError):
        Momentum([], momentum=1.0)


def test_rmsprop_validation():
    with pytest.raises(ValueError):
        RMSProp([], decay=1.5)


def test_adam_beta_validation():
    with pytest.raises(ValueError):
        Adam([], beta1=1.0)


class TestGradientClipping:
    def test_clip_reduces_norm(self, rng):
        layer = Dense(3, 3, rng=rng)
        layer.grads["W"][...] = 10.0
        layer.grads["b"][...] = 10.0
        opt = SGD([layer], lr=0.1)
        pre_norm = opt.clip_gradients(1.0)
        assert pre_norm > 1.0
        total = sum(float((g**2).sum()) for g in layer.grads.values())
        assert np.sqrt(total) <= 1.0 + 1e-9

    def test_clip_noop_below_threshold(self, rng):
        layer = Dense(2, 2, rng=rng)
        layer.grads["W"][...] = 0.01
        before = layer.grads["W"].copy()
        SGD([layer], lr=0.1).clip_gradients(100.0)
        np.testing.assert_array_equal(layer.grads["W"], before)

    def test_clip_invalid_norm(self, rng):
        with pytest.raises(ValueError):
            SGD([Dense(2, 2, rng=rng)], lr=0.1).clip_gradients(0.0)


def test_optimizer_updates_in_place(rng):
    """Parameter arrays must keep their identity (serialisation aliases)."""
    layer = Dense(2, 2, rng=rng)
    ref = layer.params["W"]
    opt = Adam([layer], lr=0.1)
    layer.forward(np.ones((1, 2)))
    layer.backward(np.ones((1, 2)))
    opt.step()
    assert layer.params["W"] is ref


def test_zero_grad_via_optimizer(rng):
    net = Sequential([Dense(2, 4, rng=rng), Dense(4, 1, rng=rng)])
    opt = SGD(net.layers, lr=0.1)
    net.forward(np.ones((3, 2)))
    net.backward(np.ones((3, 1)))
    opt.zero_grad()
    for layer in net.layers:
        for grad in layer.grads.values():
            assert np.all(grad == 0)
