"""Tests for the Eq. 1 dynamic goal vector (§III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import BURST_BUFFER, NODE, ResourceSpec, SystemConfig
from repro.core.goal import contention_terms, goal_vector
from tests.conftest import make_job


class TestGoalVector:
    def test_simplex(self, tiny_system):
        queued = [make_job(job_id=1, nodes=8, bb=2, runtime=100.0)]
        g = goal_vector(queued, [], tiny_system, now=0.0)
        assert g.sum() == pytest.approx(1.0)
        assert np.all(g >= 0)

    def test_idle_system_uniform(self, tiny_system):
        g = goal_vector([], [], tiny_system, now=0.0)
        np.testing.assert_allclose(g, [0.5, 0.5])

    def test_hand_computed_example(self, tiny_system):
        """One queued job: 8/16 nodes, 4/8 BB, t=100 →
        node term = 0.5*100 = 50, bb term = 0.5*100 = 50 → (0.5, 0.5).
        Second job with bb only shifts weight to bb."""
        j1 = make_job(job_id=1, nodes=8, bb=4, runtime=100.0, walltime=100.0)
        g = goal_vector([j1], [], tiny_system, now=0.0)
        np.testing.assert_allclose(g, [0.5, 0.5])
        j2 = make_job(job_id=2, nodes=0, bb=8, runtime=100.0, walltime=100.0)
        g = goal_vector([j1, j2], [], tiny_system, now=0.0)
        # terms: node 50, bb 50 + 100 = 150 → (0.25, 0.75)
        np.testing.assert_allclose(g, [0.25, 0.75])

    def test_running_jobs_use_remaining_walltime(self, tiny_system):
        job = make_job(job_id=1, nodes=16, bb=0, runtime=400.0, walltime=400.0)
        job.start_time = 0.0
        g_t100 = contention_terms([], [job], tiny_system, now=100.0)
        g_t300 = contention_terms([], [job], tiny_system, now=300.0)
        assert g_t100[0] == pytest.approx(300.0)
        assert g_t300[0] == pytest.approx(100.0)

    def test_overrun_running_job_contributes_zero(self, tiny_system):
        job = make_job(job_id=1, nodes=16, runtime=100.0, walltime=100.0)
        job.start_time = 0.0
        terms = contention_terms([], [job], tiny_system, now=500.0)
        assert terms[0] == 0.0

    def test_running_without_start_rejected(self, tiny_system):
        job = make_job(job_id=1, nodes=4)
        with pytest.raises(ValueError):
            contention_terms([], [job], tiny_system, now=0.0)

    def test_fiercer_resource_weighted_higher(self, tiny_system):
        """BB-heavy queue → rBB > rNode (the §V-D behaviour)."""
        queued = [
            make_job(job_id=i, nodes=1, bb=6, runtime=1000.0, walltime=1000.0)
            for i in range(5)
        ]
        g = goal_vector(queued, [], tiny_system, now=0.0)
        bb_idx = tiny_system.names.index(BURST_BUFFER)
        assert g[bb_idx] > 0.9

    def test_three_resources(self):
        system = SystemConfig(
            resources=(
                ResourceSpec(NODE, 10),
                ResourceSpec(BURST_BUFFER, 10),
                ResourceSpec("power", 10),
            )
        )
        job = make_job(job_id=1, nodes=10, bb=5, power=5, runtime=100.0)
        g = goal_vector([job], [], system, now=0.0)
        assert g.shape == (3,)
        np.testing.assert_allclose(g, [0.5, 0.25, 0.25])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 16), st.integers(0, 8), st.floats(1.0, 1e5)),
        min_size=0,
        max_size=15,
    )
)
def test_goal_simplex_property(jobs_data):
    system = SystemConfig(
        resources=(ResourceSpec(NODE, 16), ResourceSpec(BURST_BUFFER, 8))
    )
    queued = [
        make_job(job_id=i, nodes=n, bb=b, runtime=t, walltime=t)
        for i, (n, b, t) in enumerate(jobs_data)
    ]
    g = goal_vector(queued, [], system, now=0.0)
    assert g.shape == (2,)
    assert g.sum() == pytest.approx(1.0)
    assert np.all(g >= 0.0)


def _per_job_reference(queued, running, system, now):
    """The seed implementation's summation order: one job at a time."""
    names = system.names
    caps = [float(system.capacity(n)) for n in names]
    totals = np.zeros(len(names))
    for job in queued:
        for k, name in enumerate(names):
            totals[k] += job.request(name) / caps[k] * job.walltime
    for job in running:
        remaining = max(job.walltime - (now - job.start_time), 0.0)
        for k, name in enumerate(names):
            totals[k] += job.request(name) / caps[k] * remaining
    return totals


class TestSummationOrder:
    """Eq. 1 columnar convention: both queue forms, one float order."""

    def _jobs(self, n, start=False):
        jobs = [
            make_job(
                job_id=100 + i,
                nodes=(i * 7) % 16,
                bb=(i * 3) % 8,
                runtime=50.0 + 13.7 * i,
                walltime=60.0 + 13.7 * i,
            )
            for i in range(n)
        ]
        if start:
            for i, job in enumerate(jobs):
                job.start_time = 5.0 * i
        return jobs

    def test_plain_list_and_jobqueue_bit_identical(self, tiny_system):
        """The historical drift: JobQueue's columnar totals vs the
        per-job loop disagreed in the last ulp. Both forms now evaluate
        the identical ``(P/caps).T @ t`` product — exact equality."""
        from repro.sched.jobqueue import JobQueue

        queued = self._jobs(9)
        running = self._jobs(4, start=True)
        queue = JobQueue(tiny_system.names)
        for job in queued:
            queue.append(job)
        plain = contention_terms(queued, running, tiny_system, now=30.0)
        columnar = contention_terms(queue, running, tiny_system, now=30.0)
        assert plain.tobytes() == columnar.tobytes()
        g_plain = goal_vector(queued, running, tiny_system, now=30.0)
        g_columnar = goal_vector(queue, running, tiny_system, now=30.0)
        assert g_plain.tobytes() == g_columnar.tobytes()


@settings(max_examples=60, deadline=None)
@given(
    queued_data=st.lists(
        st.tuples(st.integers(0, 16), st.integers(0, 8), st.floats(1.0, 1e5)),
        min_size=0,
        max_size=12,
    ),
    running_data=st.lists(
        st.tuples(
            st.integers(0, 16),
            st.integers(0, 8),
            st.floats(1.0, 1e5),
            st.floats(0.0, 1e5),
        ),
        min_size=0,
        max_size=12,
    ),
    now=st.floats(0.0, 1e5),
)
def test_columnar_terms_match_per_job_loop_within_bound(
    queued_data, running_data, now
):
    """The columnar product may re-associate float adds, but never
    drifts from the per-job reference beyond a few ulps — the bound
    documented in :func:`repro.core.goal.contention_terms`."""
    system = SystemConfig(
        resources=(ResourceSpec(NODE, 16), ResourceSpec(BURST_BUFFER, 8))
    )
    queued = [
        make_job(job_id=i, nodes=n, bb=b, runtime=t, walltime=t)
        for i, (n, b, t) in enumerate(queued_data)
    ]
    running = []
    for i, (n, b, t, started) in enumerate(running_data):
        job = make_job(job_id=1000 + i, nodes=n, bb=b, runtime=t, walltime=t)
        job.start_time = started
        running.append(job)
    got = contention_terms(queued, running, system, now=now)
    ref = _per_job_reference(queued, running, system, now)
    np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-9)
