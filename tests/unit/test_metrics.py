"""Tests for metrics (§IV-B) and Kiviat normalization (Fig 7)."""

import numpy as np
import pytest

from repro.cluster.resources import BURST_BUFFER, NODE, POWER, ResourceSpec, SystemConfig
from repro.sim.metrics import MetricReport, compute_metrics, kiviat_normalize
from repro.sim.recorder import TimelineRecorder
from tests.conftest import make_job


def finished_job(job_id, submit, start, runtime, nodes, bb=0, **extra):
    job = make_job(job_id=job_id, submit=submit, runtime=runtime, nodes=nodes, bb=bb, **extra)
    job.start_time = start
    job.end_time = start + runtime
    return job


class TestComputeMetrics:
    def test_empty_jobs(self, tiny_system):
        report = compute_metrics([], tiny_system)
        assert report.n_jobs == 0
        assert report.node_util == 0.0

    def test_single_job_full_utilization(self, tiny_system):
        job = finished_job(1, submit=0.0, start=0.0, runtime=100.0, nodes=16, bb=8)
        report = compute_metrics([job], tiny_system)
        assert report.node_util == pytest.approx(1.0)
        assert report.bb_util == pytest.approx(1.0)
        assert report.avg_wait == 0.0
        assert report.avg_slowdown == 1.0
        assert report.makespan == pytest.approx(100.0)

    def test_hand_computed_two_jobs(self, tiny_system):
        # span = 0 .. 300; node-seconds used = 8*100 + 4*200 = 1600
        jobs = [
            finished_job(1, submit=0.0, start=0.0, runtime=100.0, nodes=8),
            finished_job(2, submit=0.0, start=100.0, runtime=200.0, nodes=4),
        ]
        report = compute_metrics(jobs, tiny_system)
        assert report.node_util == pytest.approx(1600 / (16 * 300))
        assert report.avg_wait == pytest.approx(50.0)
        # slowdowns: 1.0 and (100+200)/200 = 1.5
        assert report.avg_slowdown == pytest.approx(1.25)
        assert report.max_wait == 100.0

    def test_unfinished_jobs_excluded(self, tiny_system):
        done = finished_job(1, submit=0.0, start=0.0, runtime=100.0, nodes=4)
        pending = make_job(job_id=2, nodes=4)
        report = compute_metrics([done, pending], tiny_system)
        assert report.n_jobs == 1

    def test_power_metric(self):
        system = SystemConfig(
            resources=(ResourceSpec(NODE, 8), ResourceSpec(POWER, 100))
        )
        job = finished_job(1, submit=0.0, start=0.0, runtime=100.0, nodes=4, power=50)
        report = compute_metrics([job], system)
        assert report.avg_power_units == pytest.approx(50.0)
        assert "avg_power_units" in report.as_dict()

    def test_as_dict_keys(self, tiny_system):
        job = finished_job(1, submit=0.0, start=0.0, runtime=10.0, nodes=1)
        d = compute_metrics([job], tiny_system).as_dict()
        assert set(d) == {"node_util", "bb_util", "avg_wait_h", "avg_slowdown"}

    def test_wait_hours_conversion(self, tiny_system):
        job = finished_job(1, submit=0.0, start=7200.0, runtime=100.0, nodes=1)
        report = compute_metrics([job], tiny_system)
        assert report.avg_wait_hours == pytest.approx(2.0)


def report_with(node_util, bb_util, wait, slowdown) -> MetricReport:
    return MetricReport(
        utilization={NODE: node_util, BURST_BUFFER: bb_util},
        avg_wait=wait,
        avg_slowdown=slowdown,
        max_wait=wait,
        p95_slowdown=slowdown,
        makespan=1000.0,
        n_jobs=10,
    )


class TestKiviat:
    def test_best_method_scores_one(self):
        reports = {
            "A": report_with(0.8, 0.6, 100.0, 2.0),
            "B": report_with(0.4, 0.3, 200.0, 4.0),
        }
        chart = kiviat_normalize(reports)
        assert all(v == pytest.approx(1.0) for v in chart["A"].values())
        assert chart["B"]["node_util"] == pytest.approx(0.5)
        assert chart["B"]["inv_avg_wait"] == pytest.approx(0.5)
        assert chart["B"]["inv_avg_slowdown"] == pytest.approx(0.5)

    def test_values_in_unit_interval(self):
        reports = {
            "A": report_with(0.9, 0.1, 50.0, 1.5),
            "B": report_with(0.2, 0.8, 500.0, 9.0),
            "C": report_with(0.5, 0.5, 100.0, 3.0),
        }
        chart = kiviat_normalize(reports)
        for axes in chart.values():
            for value in axes.values():
                assert 0.0 <= value <= 1.0

    def test_zero_wait_handled(self):
        reports = {"A": report_with(0.5, 0.5, 0.0, 1.0)}
        chart = kiviat_normalize(reports)
        assert chart["A"]["inv_avg_wait"] == 1.0

    def test_power_axis_optional(self):
        r = report_with(0.5, 0.5, 10.0, 2.0)
        r.avg_power_units = 40.0
        chart = kiviat_normalize({"A": r}, include_power=True)
        assert "avg_sys_power" in chart["A"]

    def test_empty(self):
        assert kiviat_normalize({}) == {}


class TestRecorder:
    def test_time_weighted_mean(self):
        rec = TimelineRecorder()
        rec.record_utilization(0.0, np.array([0.0]))
        rec.record_utilization(10.0, np.array([1.0]))
        rec.record_utilization(30.0, np.array([0.5]))
        # step function: 0.0 for 10s, 1.0 for 20s => (0*10 + 1*20)/30
        mean = rec.time_weighted_mean_utilization()
        assert mean[0] == pytest.approx(20 / 30)

    def test_single_sample(self):
        rec = TimelineRecorder()
        rec.record_utilization(5.0, np.array([0.7]))
        assert rec.time_weighted_mean_utilization()[0] == pytest.approx(0.7)

    def test_empty_series(self):
        rec = TimelineRecorder()
        times, values = rec.utilization_series
        assert times.size == 0
        assert rec.time_weighted_mean_utilization().size == 0

    def test_goal_window(self):
        rec = TimelineRecorder()
        for t in range(10):
            rec.record_goal(float(t), np.array([t / 10, 1 - t / 10]))
        times, goals = rec.goal_window(3.0, 6.0)
        assert times.tolist() == [3.0, 4.0, 5.0, 6.0]
        assert goals.shape == (4, 2)

    def test_goal_window_invalid(self):
        with pytest.raises(ValueError):
            TimelineRecorder().goal_window(5.0, 1.0)

    def test_values_copied(self):
        rec = TimelineRecorder()
        v = np.array([0.5])
        rec.record_utilization(0.0, v)
        v[0] = 99.0
        _, values = rec.utilization_series
        assert values[0, 0] == 0.5
