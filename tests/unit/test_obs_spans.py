"""Unit tests for tracing spans and the Chrome-trace exporter."""

from __future__ import annotations

import json

import pytest

from repro.obs.spans import (
    SPAN_SCHEMA_VERSION,
    SpanRecorder,
    export_chrome_trace,
    load_spans,
    to_chrome_trace,
)


def record_nested(directory) -> None:
    recorder = SpanRecorder(directory)
    with recorder.span("run", cells=2):
        with recorder.span("cell", key="k1"):
            with recorder.span("episode"):
                pass
        with recorder.span("cell", key="k2"):
            pass
    recorder.close()


class TestSpanRecorder:
    def test_nesting_parent_ids(self, tmp_path):
        record_nested(tmp_path)
        spans = load_spans(tmp_path)
        assert all(s["schema"] == SPAN_SCHEMA_VERSION for s in spans)
        by_name: dict[str, list[dict]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (run,) = by_name["run"]
        assert run["parent_id"] is None
        assert run["attrs"] == {"cells": 2}
        cells = by_name["cell"]
        assert len(cells) == 2
        assert all(c["parent_id"] == run["span_id"] for c in cells)
        (episode,) = by_name["episode"]
        cell_k1 = next(c for c in cells if c["attrs"]["key"] == "k1")
        assert episode["parent_id"] == cell_k1["span_id"]
        # Children close before (and nest inside) their parents.
        assert episode["dur_s"] <= cell_k1["dur_s"] <= run["dur_s"]
        assert run["t"] <= cell_k1["t"] <= episode["t"]

    def test_span_records_even_when_body_raises(self, tmp_path):
        recorder = SpanRecorder(tmp_path)
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("x")
        recorder.close()
        assert [s["name"] for s in load_spans(tmp_path)] == ["doomed"]


class TestChromeTrace:
    def test_export_round_trip(self, tmp_path):
        record_nested(tmp_path)
        out = export_chrome_trace(tmp_path)
        assert out == tmp_path / "trace.json"
        doc = json.loads(out.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in slices} == {"run", "cell", "episode"}
        assert len(meta) == 1  # one process_name record per pid
        for entry in slices:
            assert entry["ts"] >= 0.0 and entry["dur"] >= 0.0
            assert entry["cat"] == "repro"
        run = next(e for e in slices if e["name"] == "run")
        episode = next(e for e in slices if e["name"] == "episode")
        # Relative microsecond timestamps preserve containment.
        assert run["ts"] <= episode["ts"]
        assert episode["ts"] + episode["dur"] <= run["ts"] + run["dur"] + 1.0

    def test_events_become_instant_markers(self, tmp_path):
        record_nested(tmp_path)
        spans = load_spans(tmp_path)
        events = [{"event": "cell_done", "t": spans[0]["t"], "key": "k1"}]
        doc = to_chrome_trace(spans, events)
        (marker,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert marker["name"] == "cell_done"
        assert marker["args"]["key"] == "k1"

    def test_export_requires_spans(self, tmp_path):
        with pytest.raises(ValueError, match="no span records"):
            export_chrome_trace(tmp_path)
