#!/usr/bin/env python
"""The paper's Fig. 1 motivating example, replayed in the simulator.

Four jobs with complementary demands on two resources, all submitted at
once, one-hour runtimes. A fixed-priority scheduler that equally
maximises both utilizations picks (J2, J3) first and needs three hours;
the contention-aware order (J1, J3), (J2, J4) finishes in two. Eq. 1's
goal vector shows what a dynamic prioritizer sees at t=0.

The toy two-resource system registers as a *plugin system* — after the
``@register_system`` decorator it is addressable by name from the
facade (``make_system("fig1_toy")``) and from scenario files.

Run:  python examples/motivating_example.py
"""

from repro import FCFSScheduler, Simulator
from repro.api import make_system, register_system
from repro.cluster.resources import ResourceSpec, SystemConfig
from repro.core.goal import goal_vector
from repro.workload.job import Job

HOUR = 3600.0
DEMANDS = {"J1": (6, 3), "J2": (5, 5), "J3": (4, 5), "J4": (5, 4)}


@register_system("fig1_toy", description="Fig. 1 toy: two 10-unit resources A/B")
def build_fig1_system() -> SystemConfig:
    return SystemConfig(resources=(ResourceSpec("A", 10), ResourceSpec("B", 10)))


def build(order: list[str]) -> list[Job]:
    return [
        Job(
            job_id=i + 1,
            submit_time=i * 1e-3,  # pin the FCFS order
            runtime=HOUR,
            walltime=HOUR,
            requests={"A": DEMANDS[name][0], "B": DEMANDS[name][1]},
        )
        for i, name in enumerate(order)
    ]


def main() -> None:
    system = make_system("fig1_toy")
    print("Job demands (% of each resource):")
    for name, (a, b) in DEMANDS.items():
        print(f"  {name}: A={a * 10}%  B={b * 10}%")

    for label, order in [
        ("fixed-weight order (J2,J3),(J1),(J4)", ["J2", "J3", "J1", "J4"]),
        ("ideal order       (J1,J3),(J2,J4)", ["J1", "J3", "J2", "J4"]),
    ]:
        result = Simulator(system, FCFSScheduler(window_size=4)).run(build(order))
        print(f"\n{label}: makespan = {result.makespan / HOUR:.0f} h")
        for job in sorted(result.jobs, key=lambda j: j.job_id):
            print(
                f"  job {job.job_id}: start {job.start_time / HOUR:.0f} h, "
                f"end {job.end_time / HOUR:.0f} h"
            )

    g = goal_vector(build(["J1", "J2", "J3", "J4"]), [], system, now=0.0)
    print(f"\nEq. 1 goal vector at t=0: rA={g[0]:.3f}, rB={g[1]:.3f}")
    print("(resource A carries slightly more demand, but a static 0.5/0.5")
    print(" weighting cannot see the pairing structure at all)")


if __name__ == "__main__":
    main()
