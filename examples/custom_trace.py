#!/usr/bin/env python
"""Bring your own trace: SWF round-trip plus a plugin workload.

Production sites hold their job logs in the Standard Workload Format.
This example writes a generated trace to SWF (with the multi-resource
extension columns), reads it back, and registers a *custom workload* —
the paper's §IV-A pipeline of layering synthetic Darshan I/O records on
top of a trace to derive burst-buffer requests — under the name
``site_replay``. Registration is the whole integration: the workload
immediately runs through ``run_scenario`` (and would be addressable
from scenario files and ``repro compare`` alike), with zero edits to
core modules.

Run:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro.api import WORKLOADS, register_workload, run_scenario
from repro.workload.darshan import extract_bb_requests, generate_darshan_records
from repro.workload.swf import parse_swf, write_swf
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace


@register_workload(
    "site_replay",
    description="Replay the base trace with Darshan-derived BB requests (§IV-A)",
)
def build_site_replay(base_jobs, system, seed):
    """Derive burst-buffer requests from synthetic Darshan records."""
    records = generate_darshan_records(base_jobs, seed=seed)
    # extract_bb_requests returns fresh copies; base_jobs stays untouched.
    return extract_bb_requests(
        base_jobs,
        records,
        bb_unit_gb=1024.0,
        max_units=system.capacity("burst_buffer"),
    )


def main() -> None:
    jobs = generate_theta_trace(ThetaTraceConfig(total_nodes=64, n_jobs=100), seed=3)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "site_trace.swf"
        write_swf(path, jobs)
        print(f"Wrote {len(jobs)} jobs to {path.name}")
        loaded = parse_swf(path)
        print(f"Parsed back {len(loaded)} jobs "
              f"(first submit at t={loaded[0].submit_time:.0f}s)")

    print(f"\nRegistered workloads now include: "
          f"{[n for n in WORKLOADS.names() if n == 'site_replay']}")

    result = run_scenario(
        {
            "name": "site-replay",
            "methods": ["heuristic"],
            "workloads": ["site_replay"],
            "system": {"name": "mini_theta", "nodes": 64, "bb_units": 32},
            "seed": 3,
            "train": False,
            "config": {"n_jobs": 100},
        }
    )
    m = result.reports["site_replay"]["heuristic"]
    print(f"\nFCFS replay: node util {m.node_util:.1%}, bb util {m.bb_util:.1%}, "
          f"avg wait {m.avg_wait_hours:.2f} h")


if __name__ == "__main__":
    main()
