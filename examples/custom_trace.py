#!/usr/bin/env python
"""Bring your own trace: SWF round-trip and Darshan-style BB extraction.

Production sites hold their job logs in the Standard Workload Format.
This example writes a generated trace to SWF (with the multi-resource
extension columns), reads it back, layers synthetic Darshan I/O records
on top (the paper's §IV-A pipeline for deriving burst-buffer requests),
and replays the result.

Run:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro import (
    Simulator,
    SystemConfig,
    ThetaTraceConfig,
    generate_theta_trace,
    make_scheduler,
    parse_swf,
    write_swf,
)
from repro.workload.darshan import extract_bb_requests, generate_darshan_records


def main() -> None:
    system = SystemConfig.mini_theta(nodes=64, bb_units=32)
    jobs = generate_theta_trace(
        ThetaTraceConfig(total_nodes=64, n_jobs=100), seed=3
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "site_trace.swf"
        write_swf(path, jobs)
        print(f"Wrote {len(jobs)} jobs to {path.name}")

        loaded = parse_swf(path)
        print(f"Parsed back {len(loaded)} jobs "
              f"(first submit at t={loaded[0].submit_time:.0f}s)")

    # §IV-A: derive burst-buffer requests from (synthetic) Darshan logs.
    records = generate_darshan_records(loaded, seed=3)
    with_bb = extract_bb_requests(
        loaded, records, bb_unit_gb=1024.0, max_units=system.capacity("burst_buffer")
    )
    n_bb = sum(1 for j in with_bb if j.request("burst_buffer") > 0)
    print(f"Darshan extraction: {len(records)} records, "
          f"{n_bb} jobs now carry burst-buffer requests")

    result = Simulator(system, make_scheduler("heuristic", system)).run(with_bb)
    m = result.metrics
    print(f"\nFCFS replay: node util {m.node_util:.1%}, bb util {m.bb_util:.1%}, "
          f"avg wait {m.avg_wait_hours:.2f} h")


if __name__ == "__main__":
    main()
