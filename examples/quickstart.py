#!/usr/bin/env python
"""Quickstart: simulate one workload under two schedulers.

Builds a miniature Theta (128 nodes, 64 TB burst buffer), generates a
Theta-like trace, derives the paper's S4 workload (75% of jobs request
20–285 TB-equivalent burst buffer) and replays it under the FCFS
heuristic and the NSGA-II optimizer, printing the §IV-B metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    Simulator,
    SystemConfig,
    ThetaTraceConfig,
    build_workload,
    generate_theta_trace,
    make_scheduler,
)

SEED = 2022


def main() -> None:
    system = SystemConfig.mini_theta(nodes=128, bb_units=64)
    print(f"System: {[f'{r.units}x {r.unit_label}' for r in system.resources]}")

    base = generate_theta_trace(
        ThetaTraceConfig(total_nodes=128, n_jobs=200), seed=SEED
    )
    jobs = build_workload("S4", base, system, seed=SEED)
    n_bb = sum(1 for j in jobs if j.request("burst_buffer") > 0)
    print(f"Workload S4: {len(jobs)} jobs, {n_bb} with burst-buffer requests\n")

    for method in ("heuristic", "optimization"):
        scheduler = make_scheduler(method, system, window_size=10, seed=SEED)
        result = Simulator(system, scheduler).run(jobs)
        m = result.metrics
        print(
            f"{method:>12}:  node util {m.node_util:5.1%}   "
            f"bb util {m.bb_util:5.1%}   "
            f"avg wait {m.avg_wait_hours:5.2f} h   "
            f"avg slowdown {m.avg_slowdown:5.2f}"
        )


if __name__ == "__main__":
    main()
