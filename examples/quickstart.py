#!/usr/bin/env python
"""Quickstart: compare two schedulers on one workload via the scenario API.

Declares a scenario inline — a miniature Theta (128 nodes, 64 TB burst
buffer), the paper's S4 workload (75% of jobs request 20–285
TB-equivalent burst buffer), two untrained baselines — and runs it on
the experiment engine. The same dict, saved as JSON, runs unchanged via
``repro run scenario.json``.

Run:  python examples/quickstart.py
"""

from repro.api import list_schedulers, list_workloads, run_scenario

SCENARIO = {
    "name": "quickstart",
    "methods": ["heuristic", "optimization"],
    "workloads": ["S4"],
    "system": {"name": "mini_theta", "nodes": 128, "bb_units": 64},
    "seed": 2022,
    "train": False,
    "config": {"n_jobs": 200, "window_size": 10},
}


def main() -> None:
    print(f"Registered schedulers: {', '.join(list_schedulers())}")
    print(f"Registered workloads:  {', '.join(list_workloads())}\n")

    result = run_scenario(SCENARIO)
    for method, metrics in result.reports["S4"].items():
        print(
            f"{method:>12}:  node util {metrics.node_util:5.1%}   "
            f"bb util {metrics.bb_util:5.1%}   "
            f"avg wait {metrics.avg_wait_hours:5.2f} h   "
            f"avg slowdown {metrics.avg_slowdown:5.2f}"
        )


if __name__ == "__main__":
    main()
