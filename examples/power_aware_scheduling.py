#!/usr/bin/env python
"""Three-resource scheduling: CPU + burst buffer + power (§V-E).

Adds the facility power budget as a third schedulable resource — each
job carries a power profile of 100–215 W per node, and the miniature
system gets the proportionally scaled share of the paper's 500 kW
budget. MRSch needs no structural change: the goal vector simply grows
to three entries.

Run:  python examples/power_aware_scheduling.py           (~1–2 min)
"""

from repro import Simulator, build_case_study_workload
from repro.experiments.harness import (
    ExperimentConfig,
    make_method,
    prepare_base_trace,
    train_method,
)

WORKLOAD = "S9"  # heavy burst-buffer contention + power budget


def main() -> None:
    config = ExperimentConfig(
        nodes=128, bb_units=64, n_jobs=120,
        curriculum_sets=(2, 2, 2), jobs_per_trainset=50, seed=11,
    )
    base = prepare_base_trace(config)
    jobs, system = build_case_study_workload(WORKLOAD, base, config.system(),
                                             seed=config.seed)
    budget = system.capacity("power")
    print(f"Workload {WORKLOAD}: {len(jobs)} jobs on {system.capacity('node')} nodes, "
          f"power budget {budget / 10:.0f} kW ({budget} units of 100 W)\n")

    for method in ("mrsch", "scalar_rl", "heuristic"):
        scheduler = make_method(method, system, config)
        train_method(scheduler, system, config)
        result = Simulator(system, scheduler).run(jobs)
        m = result.metrics
        print(
            f"{method:>10}:  node {m.node_util:5.1%}  bb {m.bb_util:5.1%}  "
            f"power draw {m.avg_power_units / 10:6.1f} kW avg  "
            f"wait {m.avg_wait_hours:5.2f} h  slowdown {m.avg_slowdown:5.2f}"
        )
        if method == "mrsch":
            _, goals = scheduler.goal_series()
            mean_goal = goals.mean(axis=0)
            labels = dict(zip(system.names, mean_goal))
            pretty = ", ".join(f"{k}={v:.2f}" for k, v in labels.items())
            print(f"{'':>12}mean goal vector: {pretty}")


if __name__ == "__main__":
    main()
