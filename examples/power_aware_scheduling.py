#!/usr/bin/env python
"""Three-resource scheduling: CPU + burst buffer + power (§V-E).

Runs the shipped ``power_aware_goals`` scenario file: the S9 case-study
workload (heavy burst-buffer contention, 100–215 W/node power profiles,
proportionally scaled share of the paper's 500 kW facility budget) with
the goal emphasis shifted toward power. MRSch needs no structural
change: the goal vector simply grows to three entries.

Run:  python examples/power_aware_scheduling.py           (~1–2 min)
(or:  repro run examples/scenarios/power_aware_goals.json)
"""

from pathlib import Path

from repro.api import Scenario, run_scenario, run_single

SCENARIO_FILE = Path(__file__).parent / "scenarios" / "power_aware_goals.json"


def main() -> None:
    scenario = Scenario.from_file(SCENARIO_FILE)
    config = scenario.build_config()
    print(f"Scenario {scenario.name!r} ({scenario.config_hash()}): "
          f"{scenario.description}\n")

    result = run_scenario(scenario)
    workload = scenario.workloads[0]
    for method, m in result.reports[workload].items():
        print(
            f"{method:>10}:  node {m.node_util:5.1%}  bb {m.bb_util:5.1%}  "
            f"power draw {m.avg_power_units / 10:6.1f} kW avg  "
            f"wait {m.avg_wait_hours:5.2f} h  slowdown {m.avg_slowdown:5.2f}"
        )

    # Inspect the three-entry goal vector on a standalone MRSch run,
    # configured exactly as the scenario's mrsch cell (goal options
    # included) so the printed vector matches the table above.
    mrsch_task = next(t for t in result.tasks if t.method == "mrsch")
    _, scheduler = run_single(workload, "mrsch", config, train=True,
                              **dict(mrsch_task.extra))
    _, goals = scheduler.goal_series()
    labels = dict(zip(scheduler.system.names, goals.mean(axis=0)))
    pretty = ", ".join(f"{k}={v:.2f}" for k, v in labels.items())
    print(f"\nmean MRSch goal vector: {pretty}")


if __name__ == "__main__":
    main()
