#!/usr/bin/env python
"""Train MRSch and compare it against all three baselines on burst-buffer
contention (the paper's core two-resource experiment, Figs 5–6).

The comparison grid is one facade call: every method is instantiated by
registry name, curriculum-trained if its registry entry says it is
trainable, and evaluated — frozen — on the S4 workload (heavy
burst-buffer contention). A second, single run exposes the MRSch
goal-vector log showing the §V-D dynamic prioritizing at work.

Run:  python examples/burst_buffer_scheduling.py          (~1–2 min)
"""

from repro.api import SCHEDULERS, compare, run_single
from repro.experiments.harness import ExperimentConfig

WORKLOAD = "S4"


def main() -> None:
    config = ExperimentConfig(
        nodes=128,
        bb_units=64,
        n_jobs=150,
        curriculum_sets=(2, 2, 2),
        jobs_per_trainset=60,
        seed=7,
    )
    system = config.system()
    print(f"Evaluating on {WORKLOAD}: {config.n_jobs} jobs, "
          f"{system.capacity('node')} nodes, "
          f"{system.capacity('burst_buffer')} TB burst buffer\n")

    methods = ["mrsch", "scalar_rl", "optimization", "heuristic"]
    reports = compare([WORKLOAD], methods, config, train=True)
    for method in methods:
        m = reports[WORKLOAD][method]
        trained = "(curriculum-trained)" if SCHEDULERS.get(method).trainable else "(no training)"
        print(
            f"{method:>12} {trained:>20}:  node {m.node_util:5.1%}  "
            f"bb {m.bb_util:5.1%}  wait {m.avg_wait_hours:5.2f} h  "
            f"slowdown {m.avg_slowdown:5.2f}"
        )

    # Re-run MRSch alone to inspect the §V-D goal dynamics.
    _, scheduler = run_single(WORKLOAD, "mrsch", config, train=True)
    _, goals = scheduler.goal_series()
    bb = goals[:, system.names.index("burst_buffer")]
    print(
        f"\nrBB over the MRSch run: min {bb.min():.2f}, "
        f"mean {bb.mean():.2f}, max {bb.max():.2f} "
        f"(scalar RL is fixed at 0.50)"
    )


if __name__ == "__main__":
    main()
