#!/usr/bin/env python
"""Train MRSch and compare it against all three baselines on burst-buffer
contention (the paper's core two-resource experiment, Figs 5–6).

The MRSch agent is trained with the §III-D curriculum (sampled → real →
synthetic job sets) and then evaluated — frozen — on the S4 workload
(heavy burst-buffer contention). The goal-vector log shows the §V-D
dynamic prioritizing at work.

Run:  python examples/burst_buffer_scheduling.py          (~1–2 min)
"""

import numpy as np

from repro import Simulator, build_workload
from repro.experiments.harness import (
    ExperimentConfig,
    make_method,
    prepare_base_trace,
    train_method,
)

WORKLOAD = "S4"


def main() -> None:
    config = ExperimentConfig(
        nodes=128,
        bb_units=64,
        n_jobs=150,
        curriculum_sets=(2, 2, 2),
        jobs_per_trainset=60,
        seed=7,
    )
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload(WORKLOAD, base, system, seed=config.seed)

    print(f"Evaluating on {WORKLOAD}: {len(jobs)} jobs, "
          f"{system.capacity('node')} nodes, "
          f"{system.capacity('burst_buffer')} TB burst buffer\n")

    for method in ("mrsch", "scalar_rl", "optimization", "heuristic"):
        scheduler = make_method(method, system, config)
        training = train_method(scheduler, system, config)
        result = Simulator(system, scheduler).run(jobs)
        m = result.metrics
        trained = f"(trained {training.episodes} episodes)" if training else "(no training)"
        print(
            f"{method:>12} {trained:>22}:  node {m.node_util:5.1%}  "
            f"bb {m.bb_util:5.1%}  wait {m.avg_wait_hours:5.2f} h  "
            f"slowdown {m.avg_slowdown:5.2f}"
        )
        if method == "mrsch":
            _, goals = scheduler.goal_series()
            bb = goals[:, system.names.index("burst_buffer")]
            print(
                f"{'':>36}rBB over the run: min {bb.min():.2f}, "
                f"mean {bb.mean():.2f}, max {bb.max():.2f} "
                f"(scalar RL is fixed at 0.50)"
            )


if __name__ == "__main__":
    main()
