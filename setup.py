"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools lacks the bundled ``bdist_wheel`` command (PEP 660 editable
installs need the ``wheel`` package; the legacy path does not). All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
